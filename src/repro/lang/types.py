"""Class table construction and type checking for the mini-Java language.

The type checker resolves every :class:`~repro.lang.ast.NameRef` to a local
variable, an (implicit-``this``) instance field, a static field of the
enclosing class, or a class name, and annotates every expression with its
static type. The IR builder relies on these resolutions being complete.

The class table always contains the two built-in classes ``Object`` (the
root of the hierarchy, no fields) and ``String``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from . import ast
from .errors import SourcePosition, TypeCheckError


@dataclass
class FieldInfo:
    name: str
    type: ast.Type
    is_static: bool
    is_final: bool
    decl_class: str
    init: Optional[ast.Expr]
    pos: SourcePosition


@dataclass
class MethodInfo:
    name: str
    params: list[ast.Param]
    ret_type: ast.Type
    is_static: bool
    is_constructor: bool
    decl_class: str
    body: ast.Block
    pos: SourcePosition

    @property
    def qualified_name(self) -> str:
        return f"{self.decl_class}.{self.name}"


@dataclass
class ClassInfo:
    name: str
    superclass: Optional[str]
    fields: dict[str, FieldInfo] = field(default_factory=dict)
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    pos: SourcePosition = field(default_factory=lambda: SourcePosition(0, 0))


class ClassTable:
    """All classes of a program, with hierarchy-aware lookups."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        origin = SourcePosition(0, 0)
        self.classes["Object"] = ClassInfo("Object", None, pos=origin)
        self.classes["String"] = ClassInfo("String", "Object", pos=origin)

    def __contains__(self, name: str) -> bool:
        return name in self.classes

    def get(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise TypeCheckError(f"unknown class {name!r}") from None

    def ancestors(self, name: str) -> Iterator[ClassInfo]:
        """Yield the class and all its superclasses, subclass first."""
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise TypeCheckError(f"cyclic inheritance involving {current!r}")
            seen.add(current)
            info = self.get(current)
            yield info
            current = info.superclass

    def is_subclass(self, sub: str, sup: str) -> bool:
        return any(info.name == sup for info in self.ancestors(sub))

    def subclasses(self, name: str) -> list[str]:
        """All classes that are ``name`` or a transitive subclass of it."""
        return [c for c in self.classes if self.is_subclass(c, name)]

    def lookup_field(self, class_name: str, field_name: str) -> Optional[FieldInfo]:
        for info in self.ancestors(class_name):
            if field_name in info.fields:
                return info.fields[field_name]
        return None

    def lookup_method(self, class_name: str, method_name: str) -> Optional[MethodInfo]:
        for info in self.ancestors(class_name):
            if method_name in info.methods:
                return info.methods[method_name]
        return None

    def constructor(self, class_name: str) -> Optional[MethodInfo]:
        """The constructor declared *directly* on ``class_name``, if any."""
        return self.get(class_name).methods.get("<init>")

    def site_is_instance(self, site, target: str) -> bool:
        """Dynamic type test for an allocation site (duck-typed: anything
        with ``kind`` and ``class_name``). Arrays are instances of Object
        only; unknown classes conservatively match only Object."""
        if getattr(site, "kind", "object") == "array":
            return target == "Object"
        class_name = site.class_name
        if class_name not in self.classes:
            return target == "Object"
        return self.is_subclass(class_name, target)

    def is_assignable(self, src: ast.Type, dst: ast.Type) -> bool:
        if src == dst:
            return True
        if isinstance(src, ast.NullType):
            return dst.is_reference()
        if isinstance(src, ast.ClassType) and isinstance(dst, ast.ClassType):
            return self.is_subclass(src.name, dst.name)
        if isinstance(src, ast.ArrayType):
            if isinstance(dst, ast.ClassType) and dst.name == "Object":
                return True
            if isinstance(dst, ast.ArrayType):
                return self.is_assignable(src.elem, dst.elem)
        return False


@dataclass
class CheckedProgram:
    """A type-checked program: the class table plus the original AST."""

    table: ClassTable
    unit: ast.CompilationUnit


def check_program(unit: ast.CompilationUnit) -> CheckedProgram:
    """Type-check ``unit`` in place and return the checked program."""
    table = _build_class_table(unit)
    checker = _Checker(table)
    for cls in unit.classes:
        checker.check_class(cls)
    return CheckedProgram(table, unit)


def _build_class_table(unit: ast.CompilationUnit) -> ClassTable:
    table = ClassTable()
    for cls in unit.classes:
        if cls.name in table.classes:
            raise TypeCheckError(f"duplicate class {cls.name!r}", cls.pos)
        superclass = cls.superclass or "Object"
        table.classes[cls.name] = ClassInfo(cls.name, superclass, pos=cls.pos)
    for cls in unit.classes:
        info = table.classes[cls.name]
        if info.superclass not in table.classes:
            raise TypeCheckError(
                f"class {cls.name!r} extends unknown class {info.superclass!r}", cls.pos
            )
        for fld in cls.fields:
            if fld.name in info.fields:
                raise TypeCheckError(
                    f"duplicate field {fld.name!r} in class {cls.name!r}", fld.pos
                )
            info.fields[fld.name] = FieldInfo(
                fld.name, fld.decl_type, fld.is_static, fld.is_final, cls.name, fld.init, fld.pos
            )
        for mth in cls.methods:
            if mth.name in info.methods:
                raise TypeCheckError(
                    f"duplicate method {mth.name!r} in class {cls.name!r}"
                    " (overloading is not supported)",
                    mth.pos,
                )
            info.methods[mth.name] = MethodInfo(
                mth.name,
                mth.params,
                mth.ret_type,
                mth.is_static,
                mth.is_constructor,
                cls.name,
                mth.body,
                mth.pos,
            )
    # Detect inheritance cycles eagerly.
    for name in table.classes:
        list(table.ancestors(name))
    return table


class _Scope:
    """A lexical scope of local variables."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: dict[str, ast.Type] = {}

    def lookup(self, name: str) -> Optional[ast.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def declare(self, name: str, typ: ast.Type, pos: SourcePosition) -> None:
        if self.lookup(name) is not None:
            raise TypeCheckError(f"duplicate local variable {name!r}", pos)
        self.vars[name] = typ


class _Checker:
    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.current_class: str = ""
        self.current_method: Optional[MethodInfo] = None
        self._loop_depth = 0

    # -- declarations ----------------------------------------------------------

    def check_class(self, cls: ast.ClassDecl) -> None:
        self.current_class = cls.name
        info = self.table.get(cls.name)
        for fld in cls.fields:
            self._check_type_exists(fld.decl_type, fld.pos)
            if fld.init is not None:
                scope = _Scope()
                init_t = self.check_expr(fld.init, scope)
                if not self.table.is_assignable(init_t, fld.decl_type):
                    raise TypeCheckError(
                        f"cannot initialize field {fld.name!r} of type"
                        f" {fld.decl_type} with {init_t}",
                        fld.pos,
                    )
        for mth in cls.methods:
            self.check_method(info.methods[mth.name])

    def check_method(self, method: MethodInfo) -> None:
        self.current_method = method
        self._loop_depth = 0
        self._check_type_exists(method.ret_type, method.pos)
        scope = _Scope()
        for param in method.params:
            self._check_type_exists(param.type, param.pos)
            scope.declare(param.name, param.type, param.pos)
        self.check_stmt(method.body, scope)
        self.current_method = None

    def _check_type_exists(self, typ: ast.Type, pos: SourcePosition) -> None:
        if isinstance(typ, ast.ClassType) and typ.name not in self.table:
            raise TypeCheckError(f"unknown type {typ.name!r}", pos)
        if isinstance(typ, ast.ArrayType):
            self._check_type_exists(typ.elem, pos)

    # -- statements --------------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for child in stmt.stmts:
                self.check_stmt(child, inner)
        elif isinstance(stmt, ast.LocalDecl):
            self._check_type_exists(stmt.decl_type, stmt.pos)
            if stmt.init is not None:
                init_t = self.check_expr(stmt.init, scope)
                if not self.table.is_assignable(init_t, stmt.decl_type):
                    raise TypeCheckError(
                        f"cannot initialize {stmt.name!r} of type"
                        f" {stmt.decl_type} with {init_t}",
                        stmt.pos,
                    )
            scope.declare(stmt.name, stmt.decl_type, stmt.pos)
        elif isinstance(stmt, ast.AssignStmt):
            stmt.lhs = self._resolve(stmt.lhs, scope)
            lhs_t = self.check_expr(stmt.lhs, scope, resolved=True)
            if not isinstance(stmt.lhs, (ast.VarRef, ast.FieldAccess, ast.ArrayIndex)):
                raise TypeCheckError("invalid assignment target", stmt.pos)
            if isinstance(stmt.lhs, ast.FieldAccess):
                fld = self.table.lookup_field(
                    stmt.lhs.decl_class or "", stmt.lhs.name
                )
                if fld is not None and fld.is_final and not self._in_initializer(fld):
                    raise TypeCheckError(
                        f"cannot assign to final field {fld.name!r}", stmt.pos
                    )
            rhs_t = self.check_expr(stmt.rhs, scope)
            if not self.table.is_assignable(rhs_t, lhs_t):
                raise TypeCheckError(
                    f"cannot assign {rhs_t} to {lhs_t}", stmt.pos
                )
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._resolve(stmt.expr, scope)
            if not isinstance(stmt.expr, (ast.Call, ast.NewObject, ast.SuperCall, ast.NondetCall)):
                raise TypeCheckError("expression statement has no effect", stmt.pos)
            self.check_expr(stmt.expr, scope, resolved=True)
        elif isinstance(stmt, ast.If):
            cond_t = self.check_expr(stmt.cond, scope)
            if cond_t != ast.BOOLEAN:
                raise TypeCheckError(f"if condition must be boolean, got {cond_t}", stmt.pos)
            self.check_stmt(stmt.then, _Scope(scope))
            if stmt.orelse is not None:
                self.check_stmt(stmt.orelse, _Scope(scope))
        elif isinstance(stmt, ast.While):
            cond_t = self.check_expr(stmt.cond, scope)
            if cond_t != ast.BOOLEAN:
                raise TypeCheckError(
                    f"while condition must be boolean, got {cond_t}", stmt.pos
                )
            self._loop_depth += 1
            self.check_stmt(stmt.body, _Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            method = self.current_method
            assert method is not None
            if stmt.value is None:
                if method.ret_type != ast.VOID:
                    raise TypeCheckError("missing return value", stmt.pos)
            else:
                if method.ret_type == ast.VOID:
                    raise TypeCheckError("void method cannot return a value", stmt.pos)
                value_t = self.check_expr(stmt.value, scope)
                if not self.table.is_assignable(value_t, method.ret_type):
                    raise TypeCheckError(
                        f"cannot return {value_t} from method returning"
                        f" {method.ret_type}",
                        stmt.pos,
                    )
        elif isinstance(stmt, ast.Assert):
            cond_t = self.check_expr(stmt.cond, scope)
            if cond_t != ast.BOOLEAN:
                raise TypeCheckError(
                    f"assert condition must be boolean, got {cond_t}", stmt.pos
                )
        elif isinstance(stmt, ast.Throw):
            value_t = self.check_expr(stmt.value, scope)
            if not value_t.is_reference():
                raise TypeCheckError(
                    f"throw needs a reference value, got {value_t}", stmt.pos
                )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise TypeCheckError("break/continue outside of loop", stmt.pos)
        else:
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.pos)

    def _in_initializer(self, fld: FieldInfo) -> bool:
        method = self.current_method
        if method is None:
            return False
        if fld.is_static:
            return method.name == "<clinit>"
        return method.is_constructor and method.decl_class == fld.decl_class

    # -- expressions ---------------------------------------------------------------

    def _resolve(self, expr: ast.Expr, scope: _Scope) -> ast.Expr:
        """Rewrite bare names into locals, implicit-this fields, or classes."""
        if isinstance(expr, ast.NameRef):
            if scope.lookup(expr.name) is not None:
                return ast.VarRef(expr.pos, expr.name)
            fld = self.table.lookup_field(self.current_class, expr.name)
            if fld is not None:
                if fld.is_static:
                    target: ast.Expr = ast.ClassRef(expr.pos, fld.decl_class)
                else:
                    target = ast.ThisRef(expr.pos)
                return ast.FieldAccess(expr.pos, target, expr.name)
            if expr.name in self.table:
                return ast.ClassRef(expr.pos, expr.name)
            raise TypeCheckError(f"unresolved name {expr.name!r}", expr.pos)
        if isinstance(expr, ast.FieldAccess):
            expr.target = self._resolve(expr.target, scope)
        if isinstance(expr, ast.ArrayIndex):
            expr.target = self._resolve(expr.target, scope)
        if isinstance(expr, ast.Call) and expr.target is not None:
            expr.target = self._resolve(expr.target, scope)
        return expr

    def check_expr(self, expr: ast.Expr, scope: _Scope, resolved: bool = False) -> ast.Type:
        typ = self._check_expr(expr, scope, resolved)
        expr.type = typ
        return typ

    def _check_expr(self, expr: ast.Expr, scope: _Scope, resolved: bool) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return ast.INT
        if isinstance(expr, ast.BoolLit):
            return ast.BOOLEAN
        if isinstance(expr, ast.NullLit):
            return ast.NULL
        if isinstance(expr, ast.StringLit):
            return ast.STRING
        if isinstance(expr, ast.NondetCall):
            return ast.BOOLEAN
        if isinstance(expr, ast.ThisRef):
            method = self.current_method
            if method is None or method.is_static:
                raise TypeCheckError("'this' used in a static context", expr.pos)
            return ast.ClassType(self.current_class)
        if isinstance(expr, ast.NameRef):
            if resolved:
                raise TypeCheckError(f"unresolved name {expr.name!r}", expr.pos)
            replacement = self._resolve(expr, scope)
            typ = self.check_expr(replacement, scope, resolved=True)
            # Splice the resolution into the tree by mutating in place.
            expr.__class__ = replacement.__class__  # type: ignore[assignment]
            expr.__dict__.update(replacement.__dict__)
            return typ
        if isinstance(expr, ast.VarRef):
            typ = scope.lookup(expr.name)
            if typ is None:
                raise TypeCheckError(f"unknown variable {expr.name!r}", expr.pos)
            return typ
        if isinstance(expr, ast.ClassRef):
            if expr.name not in self.table:
                raise TypeCheckError(f"unknown class {expr.name!r}", expr.pos)
            return ast.ClassType(expr.name)
        if isinstance(expr, ast.FieldAccess):
            return self._check_field_access(expr, scope)
        if isinstance(expr, ast.ArrayLength):
            return ast.INT
        if isinstance(expr, ast.ArrayIndex):
            target_t = self.check_expr(expr.target, scope)
            if not isinstance(target_t, ast.ArrayType):
                raise TypeCheckError(f"indexing non-array type {target_t}", expr.pos)
            index_t = self.check_expr(expr.index, scope)
            if index_t != ast.INT:
                raise TypeCheckError(f"array index must be int, got {index_t}", expr.pos)
            return target_t.elem
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.SuperCall):
            return self._check_super_call(expr, scope)
        if isinstance(expr, ast.NewObject):
            return self._check_new_object(expr, scope)
        if isinstance(expr, ast.NewArray):
            self._check_type_exists(expr.elem_type, expr.pos)
            size_t = self.check_expr(expr.size, scope)
            if size_t != ast.INT:
                raise TypeCheckError(f"array size must be int, got {size_t}", expr.pos)
            return ast.ArrayType(expr.elem_type)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Cast):
            expr.operand = self._resolve(expr.operand, scope)
            operand_t = self.check_expr(expr.operand, scope, resolved=True)
            target = expr.target_type
            if not isinstance(target, ast.ClassType):
                raise TypeCheckError("only class-type casts are supported", expr.pos)
            self._check_type_exists(target, expr.pos)
            if not operand_t.is_reference():
                raise TypeCheckError(
                    f"cannot cast non-reference type {operand_t}", expr.pos
                )
            return target
        if isinstance(expr, ast.InstanceOf):
            expr.operand = self._resolve(expr.operand, scope)
            operand_t = self.check_expr(expr.operand, scope, resolved=True)
            if expr.class_name not in self.table:
                raise TypeCheckError(f"unknown class {expr.class_name!r}", expr.pos)
            if not operand_t.is_reference():
                raise TypeCheckError(
                    f"instanceof needs a reference, got {operand_t}", expr.pos
                )
            return ast.BOOLEAN
        if isinstance(expr, ast.Unary):
            operand_t = self.check_expr(expr.operand, scope)
            if expr.op == "!":
                if operand_t != ast.BOOLEAN:
                    raise TypeCheckError(f"'!' needs boolean, got {operand_t}", expr.pos)
                return ast.BOOLEAN
            if expr.op == "-":
                if operand_t != ast.INT:
                    raise TypeCheckError(f"unary '-' needs int, got {operand_t}", expr.pos)
                return ast.INT
            raise TypeCheckError(f"unknown unary operator {expr.op!r}", expr.pos)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}", expr.pos)

    def _check_field_access(self, expr: ast.FieldAccess, scope: _Scope) -> ast.Type:
        target = self._resolve(expr.target, scope)
        expr.target = target
        if isinstance(target, ast.ClassRef):
            fld = self.table.lookup_field(target.name, expr.name)
            if fld is None or not fld.is_static:
                raise TypeCheckError(
                    f"no static field {expr.name!r} in class {target.name!r}", expr.pos
                )
            expr.decl_class = fld.decl_class
            expr.is_static = True
            return fld.type
        target_t = self.check_expr(target, scope, resolved=True)
        if isinstance(target_t, ast.ArrayType) and expr.name == "length":
            # Rewrite into a dedicated node so later phases need no special case.
            length = ast.ArrayLength(expr.pos, target)
            expr.__class__ = ast.ArrayLength  # type: ignore[assignment]
            expr.__dict__.clear()
            expr.__dict__.update(length.__dict__)
            return ast.INT
        if not isinstance(target_t, ast.ClassType):
            raise TypeCheckError(
                f"field access on non-object type {target_t}", expr.pos
            )
        fld = self.table.lookup_field(target_t.name, expr.name)
        if fld is None:
            raise TypeCheckError(
                f"no field {expr.name!r} in class {target_t.name!r}", expr.pos
            )
        if fld.is_static:
            raise TypeCheckError(
                f"static field {expr.name!r} accessed through an instance", expr.pos
            )
        expr.decl_class = fld.decl_class
        expr.is_static = False
        return fld.type

    def _check_call(self, expr: ast.Call, scope: _Scope) -> ast.Type:
        if expr.target is None:
            method = self.table.lookup_method(self.current_class, expr.name)
            if method is None:
                raise TypeCheckError(
                    f"no method {expr.name!r} in class {self.current_class!r}", expr.pos
                )
            if method.is_static:
                expr.target = ast.ClassRef(expr.pos, method.decl_class)
            else:
                if self.current_method is not None and self.current_method.is_static:
                    raise TypeCheckError(
                        f"instance method {expr.name!r} called from static context",
                        expr.pos,
                    )
                expr.target = ast.ThisRef(expr.pos)
            return self._check_call(expr, scope)
        target = self._resolve(expr.target, scope)
        expr.target = target
        if isinstance(target, ast.ClassRef):
            method = self.table.lookup_method(target.name, expr.name)
            if method is None or not method.is_static:
                raise TypeCheckError(
                    f"no static method {expr.name!r} in class {target.name!r}", expr.pos
                )
            expr.is_static = True
        else:
            target_t = self.check_expr(target, scope, resolved=True)
            if not isinstance(target_t, ast.ClassType):
                raise TypeCheckError(
                    f"method call on non-object type {target_t}", expr.pos
                )
            method = self.table.lookup_method(target_t.name, expr.name)
            if method is None:
                raise TypeCheckError(
                    f"no method {expr.name!r} in class {target_t.name!r}", expr.pos
                )
            if method.is_static:
                raise TypeCheckError(
                    f"static method {expr.name!r} called through an instance", expr.pos
                )
            expr.is_static = False
        expr.decl_class = method.decl_class
        self._check_args(method, expr.args, scope, expr.pos)
        return method.ret_type

    def _check_super_call(self, expr: ast.SuperCall, scope: _Scope) -> ast.Type:
        method = self.current_method
        if method is None or not method.is_constructor:
            raise TypeCheckError("super(...) outside of a constructor", expr.pos)
        info = self.table.get(self.current_class)
        if info.superclass is None:
            raise TypeCheckError("class has no superclass", expr.pos)
        ctor = None
        for ancestor in self.table.ancestors(info.superclass):
            if "<init>" in ancestor.methods:
                ctor = ancestor.methods["<init>"]
                break
        if ctor is None:
            if expr.args:
                raise TypeCheckError(
                    f"superclass {info.superclass!r} has no constructor taking"
                    f" {len(expr.args)} argument(s)",
                    expr.pos,
                )
            expr.decl_class = info.superclass
            return ast.VOID
        expr.decl_class = ctor.decl_class
        self._check_args(ctor, expr.args, scope, expr.pos)
        return ast.VOID

    def _check_new_object(self, expr: ast.NewObject, scope: _Scope) -> ast.Type:
        if expr.class_name not in self.table:
            raise TypeCheckError(f"unknown class {expr.class_name!r}", expr.pos)
        ctor = None
        for ancestor in self.table.ancestors(expr.class_name):
            if "<init>" in ancestor.methods:
                ctor = ancestor.methods["<init>"]
                break
        if ctor is None:
            if expr.args:
                raise TypeCheckError(
                    f"class {expr.class_name!r} has no constructor taking"
                    f" {len(expr.args)} argument(s)",
                    expr.pos,
                )
        else:
            self._check_args(ctor, expr.args, scope, expr.pos)
        return ast.ClassType(expr.class_name)

    def _check_args(
        self,
        method: MethodInfo,
        args: list[ast.Expr],
        scope: _Scope,
        pos: SourcePosition,
    ) -> None:
        if len(args) != len(method.params):
            raise TypeCheckError(
                f"method {method.qualified_name!r} expects {len(method.params)}"
                f" argument(s), got {len(args)}",
                pos,
            )
        for arg, param in zip(args, method.params):
            arg_t = self.check_expr(arg, scope)
            if not self.table.is_assignable(arg_t, param.type):
                raise TypeCheckError(
                    f"argument for {param.name!r} has type {arg_t},"
                    f" expected {param.type}",
                    pos,
                )

    def _check_binary(self, expr: ast.Binary, scope: _Scope) -> ast.Type:
        left_t = self.check_expr(expr.left, scope)
        right_t = self.check_expr(expr.right, scope)
        op = expr.op
        if op in ("+", "-", "*", "/", "%"):
            if left_t == ast.INT and right_t == ast.INT:
                return ast.INT
            raise TypeCheckError(f"operator {op!r} needs int operands", expr.pos)
        if op in ("<", "<=", ">", ">="):
            if left_t == ast.INT and right_t == ast.INT:
                return ast.BOOLEAN
            raise TypeCheckError(f"operator {op!r} needs int operands", expr.pos)
        if op in ("&&", "||"):
            if left_t == ast.BOOLEAN and right_t == ast.BOOLEAN:
                return ast.BOOLEAN
            raise TypeCheckError(f"operator {op!r} needs boolean operands", expr.pos)
        if op in ("==", "!="):
            ok = (
                (left_t == ast.INT and right_t == ast.INT)
                or (left_t == ast.BOOLEAN and right_t == ast.BOOLEAN)
                or (left_t.is_reference() and right_t.is_reference())
            )
            if not ok:
                raise TypeCheckError(
                    f"incomparable operand types {left_t} and {right_t}", expr.pos
                )
            return ast.BOOLEAN
        raise TypeCheckError(f"unknown binary operator {op!r}", expr.pos)
