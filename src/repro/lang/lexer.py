"""Lexer for the mini-Java surface language.

The language is a small Java subset sufficient to express the benchmark
applications of the Thresher paper: classes with single inheritance, static
and instance fields/methods, constructors, arrays, the usual statements and
expressions, and a ``nondet()`` builtin modelling environment choice.
"""

from __future__ import annotations

from typing import Iterator

from .errors import LexError, SourcePosition

KEYWORDS = frozenset(
    [
        "class",
        "extends",
        "static",
        "final",
        "public",
        "private",
        "protected",
        "void",
        "int",
        "boolean",
        "if",
        "else",
        "while",
        "for",
        "return",
        "new",
        "null",
        "true",
        "false",
        "this",
        "super",
        "break",
        "continue",
        "assert",
        "instanceof",
        "throw",
    ]
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
]


class Token:
    """A single lexical token.

    ``kind`` is one of ``"ident"``, ``"int"``, ``"string"``, ``"op"``,
    ``"keyword"``, or ``"eof"``; ``text`` is the exact source text (for
    string literals, the *unquoted* contents).
    """

    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: SourcePosition) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, {self.pos})"

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, returning a token list terminated by EOF."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def pos() -> SourcePosition:
        return SourcePosition(line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start = pos()
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start)
            advance(2)
            continue
        if ch.isdigit():
            start = pos()
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            advance(j - i)
            yield Token("int", text, start)
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            start = pos()
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_$"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, start)
            continue
        if ch == '"':
            start = pos()
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", start)
            advance(j + 1 - i)
            yield Token("string", "".join(chars), start)
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                start = pos()
                advance(len(op))
                yield Token("op", op, start)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", pos())
    yield Token("eof", "", pos())
