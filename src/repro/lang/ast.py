"""Abstract syntax tree for the mini-Java surface language.

The AST is deliberately close to Java's concrete syntax; all desugaring
(``for`` loops, compound assignment, implicit ``this``) happens either in
the parser or during lowering to the structured IR (:mod:`repro.ir.builder`).

Expression nodes carry a ``type`` attribute that the type checker
(:mod:`repro.lang.types`) fills in; it is ``None`` on freshly parsed trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SourcePosition


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Type:
    """Base class for surface types."""

    def is_reference(self) -> bool:
        return isinstance(self, (ClassType, ArrayType, NullType))


@dataclass(frozen=True)
class PrimType(Type):
    name: str  # "int" | "boolean" | "void"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassType(Type):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type

    def __str__(self) -> str:
        return f"{self.elem}[]"


@dataclass(frozen=True)
class NullType(Type):
    """The type of the ``null`` literal; assignable to any reference type."""

    def __str__(self) -> str:
        return "null"


INT = PrimType("int")
BOOLEAN = PrimType("boolean")
VOID = PrimType("void")
NULL = NullType()
STRING = ClassType("String")
OBJECT = ClassType("Object")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    pos: SourcePosition
    type: Optional[Type] = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class NameRef(Expr):
    """An unresolved bare name; the type checker rewrites these."""

    name: str = ""


@dataclass
class VarRef(Expr):
    """A resolved reference to a local variable or parameter."""

    name: str = ""


@dataclass
class ClassRef(Expr):
    """A resolved reference to a class, used as the target of statics."""

    name: str = ""


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    target: Expr = None  # type: ignore[assignment]
    name: str = ""
    # Filled by the type checker: the class that declares the field, and
    # whether the access is static.
    decl_class: Optional[str] = field(default=None, compare=False)
    is_static: bool = field(default=False, compare=False)


@dataclass
class ArrayLength(Expr):
    """``a.length`` on an array-typed target (created by the checker)."""

    target: Expr = None  # type: ignore[assignment]


@dataclass
class ArrayIndex(Expr):
    target: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A method call. ``target`` is None for unqualified calls (resolved to
    implicit ``this`` or a static method of the enclosing class), an
    expression for instance calls, or a :class:`ClassRef` for static calls.
    """

    target: Optional[Expr] = None
    name: str = ""
    args: list[Expr] = field(default_factory=list)
    decl_class: Optional[str] = field(default=None, compare=False)
    is_static: bool = field(default=False, compare=False)


@dataclass
class NondetCall(Expr):
    """The ``nondet()`` builtin: a nondeterministic boolean."""


@dataclass
class SuperCall(Expr):
    """``super(args)``, only valid as the first statement of a constructor."""

    args: list[Expr] = field(default_factory=list)
    decl_class: Optional[str] = field(default=None, compare=False)


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem_type: Type = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    op: str = ""  # "!" | "-"
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Cast(Expr):
    """``(T) e`` — a checked downcast (class types only)."""

    target_type: Type = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class InstanceOf(Expr):
    """``e instanceof T``."""

    operand: Expr = None  # type: ignore[assignment]
    class_name: str = ""


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    pos: SourcePosition


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    decl_type: Type = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Assert(Stmt):
    """``assert e;`` — desugars to ``if (!e) throw new Object();``."""

    cond: Expr = None  # type: ignore[assignment]


@dataclass
class Throw(Stmt):
    """``throw e;`` — terminates execution (exceptions are never caught,
    per the paper's model)."""

    value: Expr = None  # type: ignore[assignment]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str
    pos: SourcePosition


@dataclass
class FieldDecl:
    name: str
    decl_type: Type
    is_static: bool
    is_final: bool
    init: Optional[Expr]
    pos: SourcePosition


@dataclass
class MethodDecl:
    name: str
    params: list[Param]
    ret_type: Type
    body: Block
    is_static: bool
    is_constructor: bool
    pos: SourcePosition


@dataclass
class ClassDecl:
    name: str
    superclass: Optional[str]
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    pos: SourcePosition


@dataclass
class CompilationUnit:
    classes: list[ClassDecl]


LValue = Union[VarRef, FieldAccess, ArrayIndex]
