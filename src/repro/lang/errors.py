"""Error types raised by the mini-Java frontend.

Every frontend error carries a source position so that tooling built on top
of the frontend (the leak-report triage UI of the original Thresher tool, or
simply test assertions here) can point at the offending source text.
"""

from __future__ import annotations


class SourcePosition:
    """A (line, column) position in a source file, 1-based."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourcePosition)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class FrontendError(Exception):
    """Base class for all errors produced while processing source text."""

    def __init__(self, message: str, pos: SourcePosition | None = None) -> None:
        self.message = message
        self.pos = pos
        super().__init__(self._render())

    def _render(self) -> str:
        if self.pos is None:
            return self.message
        return f"{self.pos}: {self.message}"


class LexError(FrontendError):
    """Raised when the lexer encounters an unrecognized character sequence."""


class ParseError(FrontendError):
    """Raised when the parser encounters an unexpected token."""


class TypeError_(FrontendError):
    """Raised by the type checker.

    Named with a trailing underscore to avoid shadowing the builtin
    ``TypeError``; exported as ``TypeCheckError`` from the package.
    """


TypeCheckError = TypeError_
