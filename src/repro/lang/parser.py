"""Recursive-descent parser for the mini-Java surface language.

The parser performs purely syntactic desugaring:

* ``for (init; cond; update) body`` becomes ``{ init; while (cond) { body;
  update; } }`` (note: ``continue`` inside a desugared ``for`` therefore
  skips the update, so the benchmark programs avoid that construct);
* ``x++`` / ``x--`` statements become ``x = x + 1`` / ``x = x - 1``;
* ``x += e`` / ``x -= e`` become ``x = x + e`` / ``x = x - e``.

Name resolution (locals vs fields vs classes) is left to the type checker.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

_PRIM_TYPES = {"int": ast.INT, "boolean": ast.BOOLEAN, "void": ast.VOID}


def parse_program(source: str) -> ast.CompilationUnit:
    """Parse a complete compilation unit (a sequence of class declarations)."""
    return Parser(tokenize(source)).parse_unit()


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._idx = 0

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._idx + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self._idx += 1
        return tok

    def _expect_op(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_op(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.pos)
        return self._next()

    def _expect_keyword(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.pos)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.pos)
        return self._next()

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    # -- declarations ---------------------------------------------------------

    def parse_unit(self) -> ast.CompilationUnit:
        classes = []
        while not self._peek().kind == "eof":
            classes.append(self._parse_class())
        return ast.CompilationUnit(classes)

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect_keyword("class")
        name = self._expect_ident().text
        superclass = None
        if self._accept_keyword("extends"):
            superclass = self._expect_ident().text
        self._expect_op("{")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._peek().is_op("}"):
            self._parse_member(name, fields, methods)
        self._expect_op("}")
        return ast.ClassDecl(name, superclass, fields, methods, start.pos)

    def _parse_modifiers(self) -> tuple[bool, bool]:
        is_static = False
        is_final = False
        while True:
            tok = self._peek()
            if tok.is_keyword("static"):
                is_static = True
                self._next()
            elif tok.is_keyword("final"):
                is_final = True
                self._next()
            elif tok.kind == "keyword" and tok.text in ("public", "private", "protected"):
                self._next()
            else:
                return is_static, is_final

    def _parse_member(
        self,
        class_name: str,
        fields: list[ast.FieldDecl],
        methods: list[ast.MethodDecl],
    ) -> None:
        start = self._peek()
        is_static, is_final = self._parse_modifiers()
        # Constructor: ClassName ( ... ) { ... }
        if (
            self._peek().kind == "ident"
            and self._peek().text == class_name
            and self._peek(1).is_op("(")
        ):
            self._next()
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(
                    "<init>", params, ast.VOID, body, False, True, start.pos
                )
            )
            return
        decl_type = self._parse_type()
        name = self._expect_ident().text
        if self._peek().is_op("("):
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(name, params, decl_type, body, is_static, False, start.pos)
            )
        else:
            init = None
            if self._accept_op("="):
                init = self._parse_expr()
            self._expect_op(";")
            fields.append(
                ast.FieldDecl(name, decl_type, is_static, is_final, init, start.pos)
            )

    def _parse_params(self) -> list[ast.Param]:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._peek().is_op(")"):
            while True:
                start = self._peek()
                ptype = self._parse_type()
                pname = self._expect_ident().text
                params.append(ast.Param(ptype, pname, start.pos))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return params

    def _parse_type(self) -> ast.Type:
        tok = self._next()
        if tok.kind == "keyword" and tok.text in _PRIM_TYPES:
            base: ast.Type = _PRIM_TYPES[tok.text]
        elif tok.kind == "ident":
            base = ast.ClassType(tok.text)
        else:
            raise ParseError(f"expected type, found {tok.text!r}", tok.pos)
        while self._peek().is_op("[") and self._peek(1).is_op("]"):
            self._next()
            self._next()
            base = ast.ArrayType(base)
        return base

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_op("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_op("}"):
            stmts.append(self._parse_stmt())
        self._expect_op("}")
        return ast.Block(start.pos, stmts)

    def _looks_like_decl(self) -> bool:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in ("int", "boolean"):
            return True
        if tok.kind != "ident":
            return False
        nxt = self._peek(1)
        if nxt.kind == "ident":
            return True
        # Array-typed declaration: Foo[] x  /  Foo[][] x
        i = 1
        while self._peek(i).is_op("[") and self._peek(i + 1).is_op("]"):
            i += 2
        return i > 1 and self._peek(i).kind == "ident"

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_op("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_op(";"):
                value = self._parse_expr()
            self._expect_op(";")
            return ast.Return(tok.pos, value)
        if tok.is_keyword("break"):
            self._next()
            self._expect_op(";")
            return ast.Break(tok.pos)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_op(";")
            return ast.Continue(tok.pos)
        if tok.is_keyword("throw"):
            self._next()
            value = self._parse_expr()
            self._expect_op(";")
            return ast.Throw(tok.pos, value)
        if tok.is_keyword("assert"):
            self._next()
            cond = self._parse_expr()
            self._expect_op(";")
            return ast.Assert(tok.pos, cond)
        if self._looks_like_decl():
            decl_type = self._parse_type()
            name = self._expect_ident().text
            init = None
            if self._accept_op("="):
                init = self._parse_expr()
            self._expect_op(";")
            return ast.LocalDecl(tok.pos, decl_type, name, init)
        return self._parse_expr_or_assign_stmt()

    def _parse_if(self) -> ast.Stmt:
        start = self._expect_keyword("if")
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        then = self._parse_stmt()
        orelse = None
        if self._accept_keyword("else"):
            orelse = self._parse_stmt()
        return ast.If(start.pos, cond, then, orelse)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect_keyword("while")
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        body = self._parse_stmt()
        return ast.While(start.pos, cond, body)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect_keyword("for")
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._looks_like_decl():
                decl_type = self._parse_type()
                name = self._expect_ident().text
                init_expr = None
                if self._accept_op("="):
                    init_expr = self._parse_expr()
                init = ast.LocalDecl(start.pos, decl_type, name, init_expr)
            else:
                init = self._parse_simple_assign(start.pos)
            self._expect_op(";")
        else:
            self._expect_op(";")
        cond: ast.Expr = ast.BoolLit(start.pos, True)
        if not self._peek().is_op(";"):
            cond = self._parse_expr()
        self._expect_op(";")
        update: Optional[ast.Stmt] = None
        if not self._peek().is_op(")"):
            update = self._parse_simple_assign(self._peek().pos)
        self._expect_op(")")
        body = self._parse_stmt()
        inner_stmts: list[ast.Stmt] = [body]
        if update is not None:
            inner_stmts.append(update)
        loop = ast.While(start.pos, cond, ast.Block(start.pos, inner_stmts))
        outer: list[ast.Stmt] = []
        if init is not None:
            outer.append(init)
        outer.append(loop)
        return ast.Block(start.pos, outer)

    def _parse_simple_assign(self, pos) -> ast.Stmt:
        """An assignment / increment without trailing semicolon (for-headers)."""
        expr = self._parse_expr()
        return self._finish_assign(pos, expr)

    def _finish_assign(self, pos, expr: ast.Expr) -> ast.Stmt:
        tok = self._peek()
        if tok.is_op("="):
            self._next()
            rhs = self._parse_expr()
            return ast.AssignStmt(pos, expr, rhs)
        if tok.is_op("+=") or tok.is_op("-="):
            self._next()
            rhs = self._parse_expr()
            op = "+" if tok.text == "+=" else "-"
            return ast.AssignStmt(pos, expr, ast.Binary(tok.pos, op, expr, rhs))
        if tok.is_op("++") or tok.is_op("--"):
            self._next()
            op = "+" if tok.text == "++" else "-"
            one = ast.IntLit(tok.pos, 1)
            return ast.AssignStmt(pos, expr, ast.Binary(tok.pos, op, expr, one))
        return ast.ExprStmt(pos, expr)

    def _parse_expr_or_assign_stmt(self) -> ast.Stmt:
        pos = self._peek().pos
        expr = self._parse_expr()
        stmt = self._finish_assign(pos, expr)
        self._expect_op(";")
        return stmt

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_binary_level(self, ops: tuple[str, ...], sub) -> ast.Expr:
        left = sub()
        while self._peek().kind == "op" and self._peek().text in ops:
            tok = self._next()
            right = sub()
            left = ast.Binary(tok.pos, tok.text, left, right)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._parse_binary_level(("||",), self._parse_and)

    def _parse_and(self) -> ast.Expr:
        return self._parse_binary_level(("&&",), self._parse_eq)

    def _parse_eq(self) -> ast.Expr:
        return self._parse_binary_level(("==", "!="), self._parse_rel)

    def _parse_rel(self) -> ast.Expr:
        left = self._parse_binary_level(("<", "<=", ">", ">="), self._parse_add)
        while self._peek().is_keyword("instanceof"):
            tok = self._next()
            name = self._expect_ident().text
            left = ast.InstanceOf(tok.pos, left, name)
        return left

    def _parse_add(self) -> ast.Expr:
        return self._parse_binary_level(("+", "-"), self._parse_mul)

    def _parse_mul(self) -> ast.Expr:
        return self._parse_binary_level(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_op("!") or tok.is_op("-"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(tok.pos, tok.text, operand)
        if self._looks_like_cast():
            self._next()  # "("
            name = self._expect_ident().text
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(tok.pos, ast.ClassType(name), operand)
        return self._parse_postfix()

    def _looks_like_cast(self) -> bool:
        """``( Ident )`` followed by something that starts a unary
        expression is a cast; ``(x) + 1`` stays a parenthesized name."""
        if not (
            self._peek().is_op("(")
            and self._peek(1).kind == "ident"
            and self._peek(2).is_op(")")
        ):
            return False
        after = self._peek(3)
        if after.kind in ("ident", "int", "string"):
            return True
        if after.kind == "keyword" and after.text in ("new", "this", "null", "true", "false"):
            return True
        if after.is_op("(") or after.is_op("!"):
            return True
        return False

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_op("."):
                self._next()
                name = self._expect_ident().text
                if self._peek().is_op("("):
                    args = self._parse_args()
                    expr = ast.Call(tok.pos, expr, name, args)
                else:
                    expr = ast.FieldAccess(tok.pos, expr, name)
            elif tok.is_op("["):
                self._next()
                index = self._parse_expr()
                self._expect_op("]")
                expr = ast.ArrayIndex(tok.pos, expr, index)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect_op("(")
        args: list[ast.Expr] = []
        if not self._peek().is_op(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return ast.IntLit(tok.pos, int(tok.text))
        if tok.kind == "string":
            self._next()
            return ast.StringLit(tok.pos, tok.text)
        if tok.is_keyword("true"):
            self._next()
            return ast.BoolLit(tok.pos, True)
        if tok.is_keyword("false"):
            self._next()
            return ast.BoolLit(tok.pos, False)
        if tok.is_keyword("null"):
            self._next()
            return ast.NullLit(tok.pos)
        if tok.is_keyword("this"):
            self._next()
            return ast.ThisRef(tok.pos)
        if tok.is_keyword("super"):
            self._next()
            args = self._parse_args()
            return ast.SuperCall(tok.pos, args)
        if tok.is_keyword("new"):
            return self._parse_new()
        if tok.is_op("("):
            self._next()
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if tok.kind == "ident":
            self._next()
            if self._peek().is_op("("):
                args = self._parse_args()
                if tok.text == "nondet" and not args:
                    return ast.NondetCall(tok.pos)
                return ast.Call(tok.pos, None, tok.text, args)
            return ast.NameRef(tok.pos, tok.text)
        raise ParseError(f"unexpected token {tok.text!r}", tok.pos)

    def _parse_new(self) -> ast.Expr:
        start = self._expect_keyword("new")
        tok = self._next()
        if tok.kind == "keyword" and tok.text in ("int", "boolean"):
            base: ast.Type = _PRIM_TYPES[tok.text]
            self._expect_op("[")
            size = self._parse_expr()
            self._expect_op("]")
            return ast.NewArray(start.pos, base, size)
        if tok.kind != "ident":
            raise ParseError(f"expected class name after 'new', found {tok.text!r}", tok.pos)
        if self._peek().is_op("["):
            self._next()
            size = self._parse_expr()
            self._expect_op("]")
            return ast.NewArray(start.pos, ast.ClassType(tok.text), size)
        args = self._parse_args()
        return ast.NewObject(start.pos, tok.text, args)
