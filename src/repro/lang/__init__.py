"""The mini-Java surface language: lexer, parser, AST, and type checker.

This package is the frontend substrate of the reproduction: the original
Thresher analyzed Java bytecode through WALA; we analyze a small Java subset
through this frontend. See DESIGN.md for the substitution rationale.
"""

from .ast import CompilationUnit
from .errors import FrontendError, LexError, ParseError, TypeCheckError
from .lexer import Token, tokenize
from .parser import parse_program
from .pretty import pretty_expr, pretty_program, pretty_stmt
from .types import CheckedProgram, ClassTable, check_program

__all__ = [
    "CompilationUnit",
    "FrontendError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "Token",
    "tokenize",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "CheckedProgram",
    "ClassTable",
    "check_program",
]


def frontend(source: str) -> CheckedProgram:
    """Parse and type-check ``source`` in one step."""
    return check_program(parse_program(source))
