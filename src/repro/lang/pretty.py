"""Pretty printer for mini-Java ASTs.

Primarily used in error messages, debugging dumps, and round-trip tests
(``parse(pretty(parse(src)))`` must produce an equivalent tree).
"""

from __future__ import annotations

from . import ast

_INDENT = "    "


def pretty_program(unit: ast.CompilationUnit) -> str:
    return "\n\n".join(pretty_class(cls) for cls in unit.classes) + "\n"


def pretty_class(cls: ast.ClassDecl) -> str:
    header = f"class {cls.name}"
    if cls.superclass:
        header += f" extends {cls.superclass}"
    lines = [header + " {"]
    for fld in cls.fields:
        mods = ""
        if fld.is_static:
            mods += "static "
        if fld.is_final:
            mods += "final "
        line = f"{_INDENT}{mods}{fld.decl_type} {fld.name}"
        if fld.init is not None:
            line += f" = {pretty_expr(fld.init)}"
        lines.append(line + ";")
    for mth in cls.methods:
        lines.append("")
        lines.append(_pretty_method(cls.name, mth))
    lines.append("}")
    return "\n".join(lines)


def _pretty_method(class_name: str, mth: ast.MethodDecl) -> str:
    params = ", ".join(f"{p.type} {p.name}" for p in mth.params)
    if mth.is_constructor:
        header = f"{_INDENT}{class_name}({params})"
    else:
        mods = "static " if mth.is_static else ""
        header = f"{_INDENT}{mods}{mth.ret_type} {mth.name}({params})"
    body = pretty_stmt(mth.body, 1)
    return f"{header} {body}"


def pretty_stmt(stmt: ast.Stmt, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        if not stmt.stmts:
            return "{ }"
        inner = "\n".join(
            _INDENT * (depth + 1) + pretty_stmt(s, depth + 1) for s in stmt.stmts
        )
        return "{\n" + inner + "\n" + pad + "}"
    if isinstance(stmt, ast.LocalDecl):
        text = f"{stmt.decl_type} {stmt.name}"
        if stmt.init is not None:
            text += f" = {pretty_expr(stmt.init)}"
        return text + ";"
    if isinstance(stmt, ast.AssignStmt):
        return f"{pretty_expr(stmt.lhs)} = {pretty_expr(stmt.rhs)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pretty_expr(stmt.expr)};"
    if isinstance(stmt, ast.If):
        text = f"if ({pretty_expr(stmt.cond)}) {pretty_stmt(_blockify(stmt.then), depth)}"
        if stmt.orelse is not None:
            text += f" else {pretty_stmt(_blockify(stmt.orelse), depth)}"
        return text
    if isinstance(stmt, ast.While):
        return f"while ({pretty_expr(stmt.cond)}) {pretty_stmt(_blockify(stmt.body), depth)}"
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return "return;"
        return f"return {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.Throw):
        return f"throw {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.Assert):
        return f"assert {pretty_expr(stmt.cond)};"
    if isinstance(stmt, ast.Break):
        return "break;"
    if isinstance(stmt, ast.Continue):
        return "continue;"
    raise ValueError(f"unknown statement {type(stmt).__name__}")


def _blockify(stmt: ast.Stmt) -> ast.Block:
    if isinstance(stmt, ast.Block):
        return stmt
    return ast.Block(stmt.pos, [stmt])


def pretty_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(expr, (ast.NameRef, ast.VarRef, ast.ClassRef)):
        return expr.name
    if isinstance(expr, ast.ThisRef):
        return "this"
    if isinstance(expr, ast.FieldAccess):
        return f"{pretty_expr(expr.target)}.{expr.name}"
    if isinstance(expr, ast.ArrayLength):
        return f"{pretty_expr(expr.target)}.length"
    if isinstance(expr, ast.ArrayIndex):
        return f"{pretty_expr(expr.target)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        if expr.target is None:
            return f"{expr.name}({args})"
        return f"{pretty_expr(expr.target)}.{expr.name}({args})"
    if isinstance(expr, ast.NondetCall):
        return "nondet()"
    if isinstance(expr, ast.SuperCall):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"super({args})"
    if isinstance(expr, ast.NewObject):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        return f"new {expr.elem_type}[{pretty_expr(expr.size)}]"
    if isinstance(expr, ast.Binary):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{pretty_expr(expr.operand)}"
    if isinstance(expr, ast.Cast):
        return f"(({expr.target_type}) {pretty_expr(expr.operand)})"
    if isinstance(expr, ast.InstanceOf):
        return f"({pretty_expr(expr.operand)} instanceof {expr.class_name})"
    raise ValueError(f"unknown expression {type(expr).__name__}")
