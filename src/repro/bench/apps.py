"""Synthetic benchmark applications for the Table 1 / Table 2 experiments.

The paper evaluates on seven real Android apps (PulsePoint, StandupTimer,
DroidLife, OpenSudoku, SMSPopUp, aMetro, K9Mail). We cannot ship those, so
each synthetic app here reproduces the *alarm-generating patterns* the
paper describes for its namesake:

* true leaks through the singleton pattern (K9Mail's
  ``EmailAddressAdapter``, Figure 5) and through static caches;
* false alarms caused solely by the null-object pattern in ``Vec`` /
  ``HashMap`` (Figure 1) — these vanish under ``Ann?=Y``;
* the StandupTimer *latent leak*: a store guarded by a flag that is never
  enabled (refutable, but one bit away from a real leak);
* false alarms from constant-guarded stores and receiver/value
  correlations that only path-sensitive reasoning can refute.

Each app declares its ground-truth leaky fields; the bench harness
cross-checks them against the bounded concrete interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchApp:
    name: str
    source: str
    description: str
    #: Static fields from which an Activity is *genuinely* reachable.
    true_leak_fields: frozenset

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# PulsePoint: two real singleton leaks plus Vec-pollution false alarms.
# ---------------------------------------------------------------------------

PULSEPOINT = BenchApp(
    name="PulsePoint",
    description="singleton-pattern leaks + Vec null-object false alarms",
    true_leak_fields=frozenset(
        {("FeedManager", "sInstance"), ("AlertCache", "alerts")}
    ),
    source="""
class FeedActivity extends Activity {
    void onCreate() {
        FeedManager m = FeedManager.getInstance(this);
        Vec local = new Vec();
        local.push(this);
        local.push("feed");
    }
    void onResume() {
        AlertCache.record(this);
    }
}
class MapActivity extends Activity {
    void onCreate() {
        Vec pins = new Vec();
        pins.push(this);
        Vec labels = new Vec();
        labels.push("pin");
    }
}
class FeedManager extends ResourceCursorAdapter {
    static FeedManager sInstance;
    static FeedManager getInstance(Context context) {
        if (FeedManager.sInstance == null) {
            FeedManager.sInstance = new FeedManager(context);
        }
        return FeedManager.sInstance;
    }
    FeedManager(Context context) { super(context); }
}
class AlertCache {
    static Vec alerts = new Vec();
    static void record(Activity a) {
        AlertCache.alerts.push(a);
    }
}
""",
)


# ---------------------------------------------------------------------------
# StandupTimer: no real leaks; the latent cacheDAOInstances flag leak.
# ---------------------------------------------------------------------------

STANDUPTIMER = BenchApp(
    name="StandupTimer",
    description="latent flag-guarded leak (never enabled) + container noise",
    true_leak_fields=frozenset(),
    source="""
class TimerActivity extends Activity {
    void onCreate() {
        DAOFactory.getTeamDAO(this);
        Vec laps = new Vec();
        laps.push(this);
        laps.push("lap");
    }
    void onPause() {
        Prefs.save(this);
    }
}
class ConfigActivity extends Activity {
    void onCreate() {
        Vec entries = new Vec();
        entries.push(this);
    }
}
class DAOFactory {
    static boolean cacheDAOInstances = false;
    static TeamDAO cachedTeamDAO;
    static TeamDAO getTeamDAO(Context context) {
        TeamDAO dao = new TeamDAO(context);
        if (DAOFactory.cacheDAOInstances) {
            DAOFactory.cachedTeamDAO = dao;
        }
        return dao;
    }
}
class TeamDAO {
    Context ctx;
    TeamDAO(Context c) { this.ctx = c; }
}
class Prefs {
    static int mode = 0;
    static Vec saved = new Vec();
    static void save(Activity a) {
        if (Prefs.mode == 1) {
            Prefs.saved.push(a);
        }
    }
}
""",
)


# ---------------------------------------------------------------------------
# DroidLife: small, every alarm is a real leak.
# ---------------------------------------------------------------------------

DROIDLIFE = BenchApp(
    name="DroidLife",
    description="tiny app whose alarms are all true leaks",
    true_leak_fields=frozenset(
        {("LifeState", "board"), ("LifeState", "lastActivity")}
    ),
    source="""
class LifeActivity extends Activity {
    void onCreate() {
        LifeState.lastActivity = this;
        LifeState.board.push(this);
    }
}
class LifeState {
    static Activity lastActivity;
    static Vec board = new Vec();
}
""",
)


# ---------------------------------------------------------------------------
# OpenSudoku: all alarms are HashMap-pollution false positives.
# ---------------------------------------------------------------------------

OPENSUDOKU = BenchApp(
    name="OpenSudoku",
    description="false alarms purely from HashMap/Vec null-object pollution",
    true_leak_fields=frozenset(),
    source="""
class SudokuActivity extends Activity {
    void onCreate() {
        HashMap cells = new HashMap();
        cells.put("cell", this);
        HashMap notes = new HashMap();
        notes.put("note", "text");
    }
    void onClick() {
        Vec moves = new Vec();
        moves.push(this);
    }
}
class PuzzleListActivity extends Activity {
    void onCreate() {
        HashMap index = new HashMap();
        index.put("puzzle", this);
    }
}
""",
)


# ---------------------------------------------------------------------------
# SMSPopUp: mostly real leaks (static caches), one refutable alarm.
# ---------------------------------------------------------------------------

SMSPOPUP = BenchApp(
    name="SMSPopUp",
    description="static caches of the popup activity (true) + one guarded store",
    true_leak_fields=frozenset(
        {("SmsCache", "lastPopup"), ("SmsCache", "history"), ("WakeLocker", "holder")}
    ),
    source="""
class PopupActivity extends Activity {
    void onCreate() {
        SmsCache.lastPopup = this;
        SmsCache.history.push(this);
        WakeLocker.acquire(this);
    }
    void onDestroy() {
        SmsDebug.log(this);
    }
}
class SmsCache {
    static Activity lastPopup;
    static Vec history = new Vec();
}
class WakeLocker {
    static Holder holder;
    static void acquire(Context c) {
        Holder h = new Holder(c);
        WakeLocker.holder = h;
    }
}
class Holder {
    Context ctx;
    Holder(Context c) { this.ctx = c; }
}
class SmsDebug {
    static boolean enabled = false;
    static Vec trace = new Vec();
    static void log(Activity a) {
        if (SmsDebug.enabled) {
            SmsDebug.trace.push(a);
        }
    }
}
""",
)


# ---------------------------------------------------------------------------
# aMetro: larger mixture — receiver correlations, constant guards, real
# leaks via a view cache holding parents.
# ---------------------------------------------------------------------------

AMETRO = BenchApp(
    name="aMetro",
    description="view-cache leak + correlation/constant-guard false alarms",
    true_leak_fields=frozenset({("TileCache", "views"), ("RouteStore", "owner")}),
    source="""
class MapViewActivity extends Activity {
    void onCreate() {
        TextView title = new TextView(this);
        TileCache.remember(title);
        Vec tiles = new Vec();
        tiles.push(this);
        tiles.push("tile");
    }
    void onStop() {
        RouteStore.setOwner(this, 1);
    }
}
class CityListActivity extends Activity {
    void onCreate() {
        Vec cities = new Vec();
        cities.push("city");
        HashMap labels = new HashMap();
        labels.put("label", this);
    }
    void onClick() {
        RouteStore.setOwner(this, 0);
    }
}
class StationActivity extends Activity {
    void onCreate() {
        int zoom = 0;
        if (zoom == 3) {
            RouteStore.pinned = this;
        }
    }
}
class CatalogService extends Service {
    static Context importContext;
    static boolean importing = false;
    void onStartCommand() {
        if (CatalogService.importing) {
            CatalogService.importContext = this;
        }
    }
}
class TileCache {
    static Vec views = new Vec();
    static void remember(View v) {
        TileCache.views.push(v);
    }
}
class RouteStore {
    static Activity owner;
    static Activity pinned;
    static void setOwner(Activity a, int keep) {
        if (keep == 1) {
            RouteStore.owner = a;
        }
    }
}
""",
)


# ---------------------------------------------------------------------------
# K9Mail: the Figure 5 EmailAddressAdapter leak plus a large noise surface.
# ---------------------------------------------------------------------------

K9MAIL = BenchApp(
    name="K9Mail",
    description="the Figure 5 singleton leak + heavy container noise",
    true_leak_fields=frozenset(
        {
            ("EmailAddressAdapter", "sInstance"),
            ("MessageCache", "recent"),
            ("MessageListFragment", "active"),
        }
    ),
    source="""
class MessageListActivity extends Activity {
    void onCreate() {
        EmailAddressAdapter a = EmailAddressAdapter.getInstance(this);
        Vec rows = new Vec();
        rows.push(this);
        rows.push("row");
    }
    void onResume() {
        MessageCache.touch(this);
    }
}
class ComposeActivity extends Activity {
    void onCreate() {
        EmailAddressAdapter a = EmailAddressAdapter.getInstance(this);
        HashMap drafts = new HashMap();
        drafts.put("draft", this);
    }
    void onClick() {
        Vec recipients = new Vec();
        recipients.push("alice");
        recipients.push(this);
    }
}
class FolderListActivity extends Activity {
    void onCreate() {
        HashMap folders = new HashMap();
        folders.put("inbox", "folder");
        Vec selection = new Vec();
        selection.push(this);
    }
    void onDestroy() {
        Debug.dump(this);
    }
}
class EmailAddressAdapter extends ResourceCursorAdapter {
    static EmailAddressAdapter sInstance;
    static EmailAddressAdapter getInstance(Context context) {
        if (EmailAddressAdapter.sInstance == null) {
            EmailAddressAdapter.sInstance = new EmailAddressAdapter(context);
        }
        return EmailAddressAdapter.sInstance;
    }
    EmailAddressAdapter(Context context) { super(context); }
}
class MessageListFragment extends Fragment {
    static MessageListFragment active;
    void onAttach(Activity a) {
        this.attach(a);
        MessageListFragment.active = this;
    }
}
class PollTask extends AsyncTask {
    static Object sticky;
    static int keepResults = 0;
    Object doInBackground(Object p) { return p; }
    void onPostExecute(Object r) {
        if (PollTask.keepResults == 1) {
            PollTask.sticky = r;
        }
    }
}
class SyncService extends Service {
    void onStartCommand() {
        PollTask t = new PollTask();
        t.execute(this);
    }
}
class MessageCache {
    static Vec recent = new Vec();
    static void touch(Activity a) {
        MessageCache.recent.push(a);
    }
}
class Debug {
    static int level = 0;
    static Vec sink = new Vec();
    static void dump(Activity a) {
        if (Debug.level >= 2) {
            Debug.sink.push(a);
        }
    }
}
""",
)


APPS: list[BenchApp] = [
    PULSEPOINT,
    STANDUPTIMER,
    DROIDLIFE,
    OPENSUDOKU,
    SMSPOPUP,
    AMETRO,
    K9MAIL,
]


def app_by_name(name: str) -> BenchApp:
    for app in APPS:
        if app.name.lower() == name.lower():
            return app
    raise KeyError(name)
