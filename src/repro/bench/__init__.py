"""Synthetic benchmark applications and workload generators."""

from .apps import AMETRO, APPS, DROIDLIFE, K9MAIL, OPENSUDOKU, PULSEPOINT, SMSPOPUP, STANDUPTIMER, BenchApp, app_by_name
from .workloads import branchy_app, chain_app, concrete_leaks, container_app

__all__ = [
    "APPS",
    "BenchApp",
    "app_by_name",
    "PULSEPOINT",
    "STANDUPTIMER",
    "DROIDLIFE",
    "OPENSUDOKU",
    "SMSPOPUP",
    "AMETRO",
    "K9MAIL",
    "branchy_app",
    "chain_app",
    "concrete_leaks",
    "container_app",
]
