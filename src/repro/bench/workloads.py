"""Workload utilities: executable ground truth and scaling generators.

``concrete_leaks`` runs the bounded concrete interpreter over the harnessed
app and reports which static fields genuinely reach an Activity — the
ground truth behind the TruA/FalA columns of Table 1 (the paper determined
these manually; we determine them by execution).

``chain_app``/``branchy_app`` generate parameterized programs for the
scaling micro-benchmarks.
"""

from __future__ import annotations

from ..android.harness import build_full_source
from ..ir import Interpreter, Limits, build_program, heap_reaches
from ..lang import frontend
from .apps import BenchApp


_TRUTH_CACHE: dict = {}


def concrete_leak_pairs(
    app: BenchApp, limits: Limits | None = None
) -> set[tuple[tuple[str, str], object]]:
    """Ground truth at alarm granularity: ((class, field), activity
    allocation site) pairs genuinely reachable in some bounded concrete
    execution — the paper's "(static field, Activity) alarm pairs".
    Cached per app for the default limits (the tables query it often)."""
    if limits is None and app.name in _TRUTH_CACHE:
        return set(_TRUTH_CACHE[app.name])
    source = build_full_source(app.source)
    program = build_program(frontend(source))
    interp = Interpreter(
        program,
        limits
        or Limits(max_loop_iterations=4, max_call_depth=32, max_steps=60_000, max_paths=600),
    )
    pairs: set[tuple[tuple[str, str], object]] = set()
    for run in interp.explore():
        for (key, site) in heap_reaches(run.statics, program.class_table, {"Activity"}):
            pairs.add((key, site))
    if limits is None:
        _TRUTH_CACHE[app.name] = set(pairs)
    return pairs


def concrete_leaks(app: BenchApp, limits: Limits | None = None) -> set[tuple[str, str]]:
    """Field-level ground truth (the coarse view used in app metadata)."""
    return {key for key, _ in concrete_leak_pairs(app, limits)}


# ---------------------------------------------------------------------------
# Scaling generators
# ---------------------------------------------------------------------------


def chain_app(depth: int) -> str:
    """An app whose leak flows through a call chain of ``depth`` helpers —
    stresses interprocedural propagation and callee skipping."""
    helpers = []
    for i in range(depth):
        callee = f"Chain.h{i + 1}(a)" if i + 1 < depth else "Chain.sink(a)"
        helpers.append(f"    static void h{i}(Activity a) {{ {callee}; }}")
    helpers.append("    static void sink(Activity a) { Chain.hold = a; }")
    body = "\n".join(helpers)
    entry = "Chain.h0(this);" if depth > 0 else "Chain.sink(this);"
    return f"""
class ChainActivity extends Activity {{
    void onCreate() {{ {entry} }}
}}
class Chain {{
    static Activity hold;
{body}
}}
"""


def branchy_app(branches: int, leaky: bool) -> str:
    """An app with ``branches`` sequential nondeterministic branches before
    a (guarded or unguarded) leaking store — stresses path enumeration."""
    lines = ["        int x = 0;"]
    for i in range(branches):
        lines.append(f"        if (nondet()) {{ x = x + 1; }} else {{ x = x + 2; }}")
    guard = "true" if leaky else f"x > {3 * branches}"
    lines.append(f"        if ({guard}) {{ Sink.hold = this; }}")
    body = "\n".join(lines)
    return f"""
class BranchActivity extends Activity {{
    void onCreate() {{
{body}
    }}
}}
class Sink {{
    static Activity hold;
}}
"""


def entailed_app(branches: int) -> str:
    """An app with ``branches`` nondeterministic branches feeding a
    *redundant* disjunctive leak guard: each backwards assume split turns
    ``(x > B && x > 1) || x > B`` into same-continuation sibling states
    where the first disjunct structurally entails the second — the shape
    the worklist-subsumption pruner (``Engine._prune_batch``) exists for
    (the dominated sibling must precede its weaker mate in the successor
    batch), so ``worklist_subsumed``/``entails_calls`` demonstrably fire.
    The bound ``B = 3*branches`` is unreachable (each branch adds at most
    2), so the store is refutable and the search explores every path."""
    bound = 3 * branches
    lines = ["        int x = 0;"]
    for _ in range(branches):
        lines.append("        if (nondet()) { x = x + 1; } else { x = x + 2; }")
    lines.append(
        f"        if ((x > {bound} && x > 1) || x > {bound})"
        " { Keep.hold = this; }"
    )
    body = "\n".join(lines)
    return f"""
class EntailActivity extends Activity {{
    void onCreate() {{
{body}
    }}
}}
class Keep {{
    static Activity hold;
}}
"""


def lattice_app(branches: int) -> str:
    """An app interleaving ``branches`` nondeterministic updates to *each*
    of two independent counters before a conjunctive leak guard over both.

    The backwards path constraints are a product lattice: every path is an
    (x-history, y-history) pair, so a whole-query cache sees O(N^2)
    distinct atom sets while relevance partitioning sees two variable-
    disjoint components with only O(N) distinct fragments each — the shape
    where per-component verdict caching collapses the key space. The bound
    ``3*branches`` is unreachable (each update adds at most 2), so every
    alarm is refutable and the search explores the full product."""
    bound = 3 * branches
    lines = ["        int x = 0;", "        int y = 0;"]
    for _ in range(branches):
        lines.append("        if (nondet()) { x = x + 1; } else { x = x + 2; }")
        lines.append("        if (nondet()) { y = y + 1; } else { y = y + 2; }")
    lines.append(
        f"        if (x > {bound} && y > {bound}) {{ Grid.hold = this; }}"
    )
    body = "\n".join(lines)
    return f"""
class LatticeActivity extends Activity {{
    void onCreate() {{
{body}
    }}
}}
class Grid {{
    static Activity hold;
}}
"""


def lifecycle_app(n_screens: int, leaky: int = 0, branches: int = 0) -> str:
    """The serve benchmark's workload: ``n_screens`` independent
    lifecycle-style components, each allocating its own payload class and
    conditionally storing it into a shared static registry — one refutable
    edge per screen (the first ``leaky`` screens store unconditionally and
    are witnessed instead).

    Built for *edit-level* incremental re-analysis: the screens share no
    code, so an edit to one screen's ``onStart`` leaves every other
    screen's verdict footprint untouched. Each ``onStart`` carries a
    ``/*edit-i*/`` marker and already bumps ``this.pad``, so the canonical
    edit (:func:`lifecycle_edit`) appends another bump: additive at the
    pointer-fact level (no new allocations, fields, or callees), hence
    eligible for the graft + delta-worklist path, and summary-preserving
    for every method that transitively calls it. Runs without the Android
    harness — pass ``include_library=False``.

    ``branches`` adds that many sequential nondeterministic updates to a
    counter ahead of each screen's (unreachable-bound) store guard, so the
    per-edge refutation cost scales like :func:`branchy_app` — the knob
    that makes search time dominate the pipeline front half, which is what
    the incremental-vs-cold benchmark measures."""
    classes = ["class Item { }", "class Registry { static Item hold; }"]
    main_lines = []
    for i in range(n_screens):
        guard_lines = []
        if branches:
            guard_lines.append("        int x = 0;")
            guard_lines.extend(
                "        if (nondet()) { x = x + 1; } else { x = x + 2; }"
                for _ in range(branches)
            )
            guard = f"x > {3 * branches}"  # unreachable: each step adds <= 2
        else:
            guard_lines.append("        int gate = 0;")
            guard = "gate == 1"
        store = (
            "Registry.hold = o;"
            if i < leaky
            else f"if ({guard}) {{ Registry.hold = o; }}"
        )
        body = "\n".join(guard_lines)
        classes.append(
            f"""
class Obj{i} extends Item {{ }}
class Screen{i} {{
    int pad;
    Item make() {{ Item o = new Obj{i}(); return o; }}
    void onStart() {{
        this.pad = this.pad + 1; /*edit-{i}*/
        Item o = this.make();
{body}
        {store}
    }}
    void onStop() {{ this.pad = 0; }}
}}"""
        )
        main_lines.append(
            f"        Screen{i} s{i} = new Screen{i}();"
            f" s{i}.onStart(); s{i}.onStop();"
        )
    body = "\n".join(main_lines)
    classes.append(f"class M {{\n    static void main() {{\n{body}\n    }}\n}}")
    return "\n".join(classes)


def lifecycle_edit(source: str, screen: int = 0) -> str:
    """The canonical one-method edit for :func:`lifecycle_app`: one more
    ``pad`` bump in ``Screen{screen}.onStart``. Additive (old facts all
    preserved) and summary-preserving (``pad`` was already in the mod
    set), so a serve session re-analyzes exactly that screen's edge."""
    marker = f"/*edit-{screen}*/"
    if marker not in source:
        raise ValueError(f"no {marker} marker: not a lifecycle_app source?")
    return source.replace(marker, f"this.pad = this.pad + 1; {marker}")


def mixed_app(
    easy: int,
    hard: int,
    easy_branches: int = 2,
    hard_branches: int = 10,
) -> str:
    """The scheduling benchmark's workload: ``easy`` cheap screens plus
    ``hard`` expensive ones, every edge refutable (no witnesses), with the
    hard screens *last* in program order.

    Each screen is an independent :func:`lifecycle_app`-style component
    whose store guard sits behind ``branches`` nondeterministic updates
    with an unreachable bound, so per-edge search cost scales with the
    branch count while every verdict stays REFUTED — verdicts are
    schedule-, portfolio-, and steal-independent by construction (the
    path-program budget, not wall clock, bounds each search). Putting the
    hard screens at the tail gives naive FIFO dispatch its worst case:
    the tail serializes on the expensive edges exactly when the pool has
    nothing left to overlap them with — the shape cheap-first priorities,
    portfolio rungs, and work stealing each attack."""
    counts = [easy_branches] * easy + [hard_branches] * hard
    classes = ["class Thing { }", "class Registry { static Thing hold; }"]
    main_lines = []
    for i, branches in enumerate(counts):
        bound = 3 * branches  # unreachable: each step adds <= 2
        lines = ["        int x = 0;"]
        lines.extend(
            "        if (nondet()) { x = x + 1; } else { x = x + 2; }"
            for _ in range(branches)
        )
        body = "\n".join(lines)
        classes.append(
            f"""
class Mix{i} extends Thing {{ }}
class Job{i} {{
    Thing make() {{ Thing o = new Mix{i}(); return o; }}
    void run() {{
        Thing o = this.make();
{body}
        if (x > {bound}) {{ Registry.hold = o; }}
    }}
}}"""
        )
        main_lines.append(f"        Job{i} j{i} = new Job{i}(); j{i}.run();")
    body = "\n".join(main_lines)
    classes.append(f"class M {{\n    static void main() {{\n{body}\n    }}\n}}")
    return "\n".join(classes)


def layered_app(n: int, hard_branches: int = 10) -> str:
    """Two-edge heap paths with the *expensive* edge first: the
    cheap-first portfolio's best case.

    Each job stores a fresh ``Holder`` into ``Registry.hold`` behind
    ``hard_branches`` nondeterministic updates with an unreachable bound
    (expensive to refute — the search must exhaust the branch tree), and
    stores an ``Item`` into the holder behind a constant-false guard
    (refuted in a handful of path programs). Every reachability path
    ``Registry.hold -> holderN0 -> itemN0`` therefore breaks at either
    edge, but the fixed Section 2 walk pays the expensive first edge,
    while the portfolio's path-level rung ladder refutes the cheap
    second edge at the small budget rung and never escalates the
    expensive one. All verdicts are REFUTED by construction, so client
    outcomes are schedule- and portfolio-independent."""
    classes = [
        "class Item { }",
        "class Holder { Item item; }",
        "class Registry { static Holder hold; }",
    ]
    main_lines = []
    for i in range(n):
        bound = 3 * hard_branches  # unreachable: each step adds <= 2
        branch_lines = "\n".join(
            "        if (nondet()) { x = x + 1; } else { x = x + 2; }"
            for _ in range(hard_branches)
        )
        classes.append(
            f"""
class Job{i} {{
    void run() {{
        Holder h = new Holder();
        Item it = new Item();
        int g = 0;
        if (g > 0) {{ h.item = it; }}
        int x = 0;
{branch_lines}
        if (x > {bound}) {{ Registry.hold = h; }}
    }}
}}"""
        )
        main_lines.append(f"        Job{i} j{i} = new Job{i}(); j{i}.run();")
    body = "\n".join(main_lines)
    classes.append(f"class M {{\n    static void main() {{\n{body}\n    }}\n}}")
    return "\n".join(classes)


def container_app(n_activities: int) -> str:
    """``n`` activities each pushing themselves into local Vecs — the
    Figure 1 pattern replicated, stressing the null-object refutations."""
    classes = []
    for i in range(n_activities):
        classes.append(
            f"""
class LocalAct{i} extends Activity {{
    void onCreate() {{
        Vec v = new Vec();
        v.push(this);
        v.push("tag{i}");
    }}
}}
"""
        )
    return "\n".join(classes)
