"""LRU-bounded memo tables for the pure-constraint decision procedure.

The backwards executor re-issues the same satisfiability queries
constantly: branch siblings share all constraints but the guard, loop
saturation re-checks a shrinking fixed point pass after pass, and
parallel edge jobs traverse the same callees. With terms hash-consed
(:mod:`repro.solver.terms`) the canonical key — the *frozen set* of atoms
plus the non-null root set — costs one frozenset build, so a table lookup
is far cheaper than even our small Fourier–Motzkin runs.

Both tables are pure-function caches: ``check_sat`` and ``entails`` depend
only on their arguments, so there is no invalidation story — only an LRU
bound to keep memory flat on long runs. The process-wide instance
:data:`SOLVER_MEMO` is switched off by ``SearchConfig.memoize_solver=False``
(CLI ``--no-memo``); hit/miss tallies are reported by the callers in
:mod:`repro.solver.core` into ``repro.obs.metrics``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Hashable, Optional

#: Default per-table capacity; entries are (small tuple key -> bool).
MEMO_CAPACITY = 1 << 16


def _configured_capacity() -> int:
    """The memo-table bound, overridable via ``REPRO_MEMO_CAPACITY`` for
    long-lived ``repro serve`` daemons that want a tighter (or looser)
    ceiling than the default."""
    raw = os.environ.get("REPRO_MEMO_CAPACITY")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return MEMO_CAPACITY


class LRUCache:
    """A thread-safe, bounded map with least-recently-used eviction."""

    __slots__ = ("capacity", "_data", "_lock")

    def __init__(self, capacity: int = MEMO_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("LRUCache capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default=None):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class SolverMemo:
    """The solver front-end's memo tables (+ master switch).

    ``enabled`` is process-wide: the :class:`~repro.symbolic.executor.Engine`
    sets it from ``SearchConfig.memoize_solver`` at construction, and the
    process-pool initializer replays the same config in workers, so one
    flag consistently governs a whole run.

    ``check`` keys whole-query verdicts (the monolithic solver path);
    ``component`` keys per-component verdicts (the relevance-partitioned
    path of :mod:`repro.solver.partition`, where the key space collapses
    from "every distinct path constraint" to "every distinct constraint
    fragment"); ``entailment`` keys :func:`repro.solver.core.entails`.
    """

    __slots__ = ("enabled", "check", "entailment", "component")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            capacity = _configured_capacity()
        self.enabled = True
        self.check = LRUCache(capacity)
        self.entailment = LRUCache(capacity)
        self.component = LRUCache(capacity)

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def clear(self) -> None:
        self.check.clear()
        self.entailment.clear()
        self.component.clear()

    def sizes(self) -> dict:
        return {
            "check": len(self.check),
            "entailment": len(self.entailment),
            "component": len(self.component),
            "capacity": self.component.capacity,
        }


#: Process-wide instance consulted by :func:`repro.solver.core.check_sat`
#: and :func:`repro.solver.core.entails`.
SOLVER_MEMO = SolverMemo()


class SolverPartition:
    """Process-wide switch for relevance-partitioned incremental solving
    (:mod:`repro.solver.partition`): component decomposition, per-component
    verdict caching, parent-reuse solver contexts, and the syntactic UNSAT
    fast path. Governed by ``SearchConfig.partition_solver`` (CLI
    ``--no-partition``) exactly like :data:`SOLVER_MEMO`; disabling it
    restores the monolithic pre-partitioning solver path bit-for-bit.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)


#: Process-wide instance consulted by :func:`repro.solver.core.check_sat`.
SOLVER_PARTITION = SolverPartition()
