"""Persistent cross-run verdict store (sqlite, WAL mode).

The relevance-partitioned solver keys verdicts on canonical alpha-renamed
signatures (:func:`repro.solver.partition.canonical_key`) — plain data
built from first-occurrence variable indices, so the same constraint
fragment produces the same signature in any process, any run, under any
hash seed. That makes the signatures *persistable*: a verdict decided in
one ``repro`` invocation answers the identical fragment in the next one,
which is what turns warm CI re-runs and restarted ``repro serve`` daemons
from cold starts into cache hits.

Three verdict kinds are stored, mirroring the in-memory tiers:

* ``comp`` — per-component verdicts (the partitioned path's tier-2 memo);
* ``part`` — whole-query verdicts on the partitioned path;
* ``mono`` — whole-query verdicts on the monolithic (``--no-partition``)
  path. Kinds never mix: per-component FM give-ups can differ from
  whole-query ones, exactly like the in-memory ``"part"`` marker.

Alongside verdicts, the store persists the :class:`RefutedStateCache`'s
proven dead ends (pickled ``(point key, query)`` snapshots), scoped by a
program fingerprint — queries reference program labels and allocation
sites, so an entry is only ever replayed into a run over the *same*
program, points-to policy, and search semantics.

Concurrency and crash safety:

* the hot path touches only in-memory mirror dicts; writes and hit-count
  bumps are queued and drained by a single background flusher thread in
  batched transactions (write-behind — the solver never blocks on fsync);
* the database runs in WAL mode with ``synchronous=NORMAL``: readers
  never block the writer, a crash loses at most the last unflushed batch,
  never the file;
* process-pool workers and concurrent ``repro serve`` sessions each open
  the same file; cross-process safety is sqlite's own locking plus a
  ``busy_timeout`` so batch writers queue instead of failing.

Invalidation is by fingerprint, never by patching rows: the file records
(schema version, solver fingerprint) at creation, and any mismatch —
including a truncated or corrupt file — disables the store for the run
with a single warning and falls back to the ordinary cold in-memory
caches. Stale verdicts are structurally impossible: a row can only be
read under the fingerprint it was written under.

Eviction is LRU-style by last-hit timestamp with a configurable row cap
(``REPRO_CACHE_MAX_ENTRIES``), applied after each flush; evicted rows
only cost a future re-derivation.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import sqlite3
import threading
import time
import warnings
from typing import Iterable, Optional

from ..obs import metrics

#: Bump when the sqlite layout or the key encoding changes.
SCHEMA_VERSION = 1

#: Bump when the decision procedure's semantics change in a way that can
#: flip a verdict for the same canonical signature (folded into the
#: solver fingerprint alongside the FM budget).
SOLVER_SEMANTICS_VERSION = 1

DB_NAME = "verdicts.sqlite"

#: Default row cap per table (verdicts / refuted) before LRU eviction.
DEFAULT_MAX_ENTRIES = 1 << 20

#: Seconds between background flushes; small enough that process-pool
#: workers rarely lose work even on abrupt shutdown.
FLUSH_INTERVAL = 0.25

_HITS = metrics.counter("store.hits")
_MISSES = metrics.counter("store.misses")
_WRITES = metrics.counter("store.writes")
_EVICTIONS = metrics.counter("store.evictions")
_ERRORS = metrics.counter("store.errors")

_VERDICT_KINDS = ("comp", "part", "mono")


def solver_fingerprint() -> str:
    """Hex fingerprint of everything that can change a verdict for a
    fixed canonical signature. Verdict rows written under a different
    fingerprint are never read."""
    from ..solver.core import FM_ATOM_BUDGET

    basis = {
        "semantics": SOLVER_SEMANTICS_VERSION,
        "fm_atom_budget": FM_ATOM_BUDGET,
    }
    return hashlib.sha256(
        json.dumps(basis, sort_keys=True).encode()
    ).hexdigest()[:16]


def encode_key(canon) -> bytes:
    """Deterministic byte encoding of a canonical signature.

    ``canonical_key`` returns ``(tuple of atom rows, frozenset of nonnull
    indices)``; the frozenset is normalized to a sorted tuple because
    frozenset ``repr`` order follows element hashes, which for ints is
    stable but is not a contract worth relying on."""
    sig, nonnull = canon
    return repr((sig, tuple(sorted(nonnull)))).encode()


def refuted_scope(pta, config) -> Optional[str]:
    """Fingerprint scoping persisted refuted states to one (program,
    points-to policy, search semantics) triple.

    Refuted-state entries embed program labels, allocation sites, and
    call-stack signatures, so unlike canonical solver signatures they are
    only meaningful for the exact program they were proven on. The scope
    covers the position-free declarations, every method body fingerprint,
    the label→method map (two programs with identical bodies but shifted
    labels must not share entries), the context policy, and the
    ``SearchConfig`` fields that affect which states are explored."""
    from ..serve.invalidation import method_fingerprints, program_signature

    program = getattr(pta, "program", None)
    if program is None:
        return None
    try:
        basis = (
            SCHEMA_VERSION,
            program_signature(program),
            tuple(sorted(method_fingerprints(program).items())),
            tuple(sorted(program.command_method.items())),
            repr(getattr(pta, "policy", None)),
            repr(config.representation),
            config.max_call_depth,
            config.max_path_constraints,
            config.materialization_bound,
            config.max_loop_passes,
            repr(config.loop_inference),
            config.max_array_case_splits,
        )
    except Exception:
        _ERRORS.inc()
        return None
    return hashlib.sha256(repr(basis).encode()).hexdigest()


class StoreInvalid(Exception):
    """The on-disk file cannot back this run (corrupt / wrong schema /
    wrong solver fingerprint). Callers fall back to cold in-memory
    caches; they never crash and never read a stale verdict."""


class VerdictStore:
    """One open verdict database: in-memory mirrors for the hot path, a
    write-behind queue drained by a background flusher thread."""

    def __init__(
        self,
        path: str,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        flush_interval: float = FLUSH_INTERVAL,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.path = path
        self.max_entries = max_entries
        self.fingerprint = fingerprint or solver_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self._mem: dict[str, dict[bytes, bool]] = {k: {} for k in _VERDICT_KINDS}
        self._plock = threading.Lock()
        self._pending_verdicts: list[tuple[str, bytes, bool]] = []
        self._pending_hits: dict[tuple[str, bytes], int] = {}
        self._pending_refuted: list[tuple[str, bytes, str, bytes]] = []
        self._pending_refuted_hits: dict[tuple[str, bytes], int] = {}
        self._db_lock = threading.Lock()
        self._db = self._open_db(path)
        self._load_mirrors()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._flush_interval = flush_interval
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-store-flush", daemon=True
        )
        self._flusher.start()

    # -- open / validate ---------------------------------------------------

    def _open_db(self, path: str) -> sqlite3.Connection:
        db = sqlite3.connect(path, check_same_thread=False)
        try:
            db.execute("PRAGMA journal_mode=WAL")
            db.execute("PRAGMA synchronous=NORMAL")
            db.execute("PRAGMA busy_timeout=5000")
            row = db.execute(
                "SELECT count(*) FROM sqlite_master WHERE name='meta'"
            ).fetchone()
            fresh = row[0] == 0
            if fresh:
                with db:
                    db.execute(
                        "CREATE TABLE IF NOT EXISTS meta"
                        " (key TEXT PRIMARY KEY, value TEXT)"
                    )
                    db.execute(
                        "CREATE TABLE IF NOT EXISTS verdicts ("
                        " kind TEXT NOT NULL, key BLOB NOT NULL,"
                        " verdict INTEGER NOT NULL,"
                        " hits INTEGER NOT NULL DEFAULT 0,"
                        " last_hit REAL NOT NULL,"
                        " PRIMARY KEY (kind, key))"
                    )
                    db.execute(
                        "CREATE TABLE IF NOT EXISTS refuted ("
                        " scope TEXT NOT NULL, point BLOB NOT NULL,"
                        " digest TEXT NOT NULL, entry BLOB NOT NULL,"
                        " hits INTEGER NOT NULL DEFAULT 0,"
                        " last_hit REAL NOT NULL,"
                        " PRIMARY KEY (scope, digest))"
                    )
                    db.execute(
                        "CREATE INDEX IF NOT EXISTS verdicts_last_hit"
                        " ON verdicts (last_hit)"
                    )
                    db.execute(
                        "CREATE INDEX IF NOT EXISTS refuted_last_hit"
                        " ON refuted (last_hit)"
                    )
                    db.execute(
                        "INSERT OR IGNORE INTO meta VALUES"
                        " ('schema_version', ?)",
                        (str(SCHEMA_VERSION),),
                    )
                    db.execute(
                        "INSERT OR IGNORE INTO meta VALUES"
                        " ('solver_fingerprint', ?)",
                        (self.fingerprint,),
                    )
            meta = dict(db.execute("SELECT key, value FROM meta"))
            if meta.get("schema_version") != str(SCHEMA_VERSION):
                raise StoreInvalid(
                    f"schema version {meta.get('schema_version')!r} !="
                    f" {SCHEMA_VERSION}"
                )
            if meta.get("solver_fingerprint") != self.fingerprint:
                raise StoreInvalid(
                    f"solver fingerprint {meta.get('solver_fingerprint')!r}"
                    f" != {self.fingerprint!r} (run `repro cache clear` to"
                    " rebuild it for the current solver)"
                )
        except sqlite3.Error as exc:
            db.close()
            raise StoreInvalid(f"unreadable database: {exc}") from exc
        except StoreInvalid:
            db.close()
            raise
        return db

    def _load_mirrors(self) -> None:
        for kind, key, verdict in self._db.execute(
            "SELECT kind, key, verdict FROM verdicts"
        ):
            mirror = self._mem.get(kind)
            if mirror is not None:
                mirror[bytes(key)] = bool(verdict)

    # -- hot path ----------------------------------------------------------

    def get(self, kind: str, canon) -> Optional[bool]:
        """Probe one verdict kind; a hit is queued for a batched
        ``hits``/``last_hit`` bump, a miss only counts."""
        enc = encode_key(canon)
        verdict = self._mem[kind].get(enc)
        if verdict is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self.hits += 1
        _HITS.inc()
        with self._plock:
            pending = self._pending_hits
            pending[(kind, enc)] = pending.get((kind, enc), 0) + 1
        return verdict

    def put(self, kind: str, canon, verdict: bool) -> None:
        enc = encode_key(canon)
        mirror = self._mem[kind]
        if enc in mirror:
            return
        mirror[enc] = bool(verdict)
        self.writes += 1
        _WRITES.inc()
        with self._plock:
            self._pending_verdicts.append((kind, enc, bool(verdict)))

    # -- refuted states ----------------------------------------------------

    def load_refuted(self, scope: str) -> list[tuple[tuple, object]]:
        """Unpickle every persisted refuted state for ``scope``. Rows that
        fail to unpickle (e.g. written by an incompatible build that
        shares the schema) are skipped and counted, never fatal."""
        out: list[tuple[tuple, object]] = []
        with self._db_lock:
            rows = self._db.execute(
                "SELECT entry FROM refuted WHERE scope=?", (scope,)
            ).fetchall()
        for (blob,) in rows:
            try:
                out.append(pickle.loads(blob))
            except Exception:
                _ERRORS.inc()
        return out

    def put_refuted(
        self, scope: str, entries: Iterable[tuple[tuple, object]]
    ) -> int:
        """Queue proven dead ends for persistence. Entries must be private
        query snapshots; they are pickled immediately (before any later
        path compression can race the serializer). Unpicklable entries are
        skipped. Returns the number queued."""
        queued = 0
        for key, query in entries:
            try:
                blob = pickle.dumps((key, query))
            except Exception:
                _ERRORS.inc()
                continue
            digest = hashlib.sha256(blob).hexdigest()
            point = repr(key).encode()
            with self._plock:
                self._pending_refuted.append((scope, point, digest, blob))
            queued += 1
            self.writes += 1
            _WRITES.inc()
        return queued

    def note_refuted_hits(self, scope: str, point_hits: dict) -> None:
        """Queue per-point hit tallies against persisted refuted rows (the
        cross-run half of the LRU signal)."""
        if not point_hits:
            return
        with self._plock:
            pending = self._pending_refuted_hits
            for key, count in point_hits.items():
                pk = (scope, repr(key).encode())
                pending[pk] = pending.get(pk, 0) + count

    # -- write-behind ------------------------------------------------------

    def _flush_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self._flush_interval)
            self._wake.clear()
            try:
                self.flush()
            except sqlite3.Error:
                _ERRORS.inc()

    def flush(self) -> None:
        """Drain the write queue in one transaction, then evict. Called
        by the flusher thread, on close, and synchronously by tests/CLI."""
        with self._plock:
            verdicts = self._pending_verdicts
            hits = self._pending_hits
            refuted = self._pending_refuted
            refuted_hits = self._pending_refuted_hits
            self._pending_verdicts = []
            self._pending_hits = {}
            self._pending_refuted = []
            self._pending_refuted_hits = {}
        if not (verdicts or hits or refuted or refuted_hits):
            return
        now = time.time()
        with self._db_lock, self._db:
            if verdicts:
                self._db.executemany(
                    "INSERT OR IGNORE INTO verdicts VALUES (?, ?, ?, 0, ?)",
                    [(k, e, int(v), now) for k, e, v in verdicts],
                )
            if hits:
                self._db.executemany(
                    "UPDATE verdicts SET hits = hits + ?, last_hit = ?"
                    " WHERE kind=? AND key=?",
                    [(n, now, k, e) for (k, e), n in hits.items()],
                )
            if refuted:
                self._db.executemany(
                    "INSERT OR IGNORE INTO refuted VALUES (?, ?, ?, ?, 0, ?)",
                    [(s, p, d, b, now) for s, p, d, b in refuted],
                )
            if refuted_hits:
                self._db.executemany(
                    "UPDATE refuted SET hits = hits + ?, last_hit = ?"
                    " WHERE scope=? AND point=?",
                    [(n, now, s, p) for (s, p), n in refuted_hits.items()],
                )
            self._evict_locked()

    def _evict_locked(self) -> None:
        """LRU eviction by last-hit timestamp, oldest rows first, down to
        ``max_entries`` per table. Runs inside the flush transaction."""
        for table in ("verdicts", "refuted"):
            (count,) = self._db.execute(
                f"SELECT count(*) FROM {table}"
            ).fetchone()
            excess = count - self.max_entries
            if excess <= 0:
                continue
            self._db.execute(
                f"DELETE FROM {table} WHERE rowid IN (SELECT rowid FROM"
                f" {table} ORDER BY last_hit ASC, rowid ASC LIMIT ?)",
                (excess,),
            )
            self.evictions += excess
            _EVICTIONS.inc(excess)

    # -- maintenance / introspection ---------------------------------------

    def stats(self) -> dict:
        """Durable counts plus this process's session counters (flushes
        first so the durable side is current)."""
        try:
            self.flush()
        except sqlite3.Error:
            _ERRORS.inc()
        with self._db_lock:
            (verdict_rows,) = self._db.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()
            (refuted_rows,) = self._db.execute(
                "SELECT count(*) FROM refuted"
            ).fetchone()
            (stored_hits,) = self._db.execute(
                "SELECT coalesce(sum(hits), 0) FROM verdicts"
            ).fetchone()
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        metrics.gauge("store.entries").set(verdict_rows + refuted_rows)
        metrics.gauge("store.bytes").set(size)
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "entries": verdict_rows,
            "refuted_entries": refuted_rows,
            "stored_hits": stored_hits,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    def prune(self, max_entries: int) -> int:
        """Synchronously evict down to ``max_entries`` rows per table;
        returns the number of rows deleted."""
        before = self.evictions
        old = self.max_entries
        self.max_entries = max_entries
        try:
            self.flush()
            with self._db_lock, self._db:
                self._evict_locked()
        finally:
            self.max_entries = old
        return self.evictions - before

    def clear(self) -> None:
        """Drop every stored verdict and refuted state (the recovery path
        after a solver upgrade changes the fingerprint)."""
        with self._plock:
            self._pending_verdicts = []
            self._pending_hits = {}
            self._pending_refuted = []
            self._pending_refuted_hits = {}
        for mirror in self._mem.values():
            mirror.clear()
        with self._db_lock, self._db:
            self._db.execute("DELETE FROM verdicts")
            self._db.execute("DELETE FROM refuted")

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._flusher.is_alive():
            self._flusher.join(timeout=5)
        try:
            self.flush()
        except sqlite3.Error:
            _ERRORS.inc()
        with self._db_lock:
            self._db.close()


# ---------------------------------------------------------------------------
# Process-wide activation (mirrors SOLVER_MEMO / SOLVER_PARTITION)
# ---------------------------------------------------------------------------

#: The store consulted by :mod:`repro.solver.core`; ``None`` when no cache
#: directory is configured (the default) or the on-disk file was rejected.
ACTIVE: Optional[VerdictStore] = None

#: Directories whose store already failed validation this process — warn
#: once, not once per engine construction.
_REJECTED: set[str] = set()


def resolve_cache_dir(configured: Optional[str]) -> Optional[str]:
    """The effective cache directory: explicit config first, then the
    ``REPRO_CACHE_DIR`` environment variable."""
    return configured or os.environ.get("REPRO_CACHE_DIR") or None


def store_path(cache_dir: str) -> str:
    return os.path.join(cache_dir, DB_NAME)


def attach(cache_dir: Optional[str]) -> Optional[VerdictStore]:
    """Activate (or deactivate) the process-wide store for ``cache_dir``.

    Called from ``Engine.__init__`` exactly like the ``SOLVER_MEMO``
    enable flag, so one engine construction consistently governs a whole
    run — including process-pool workers, which replay the same config.
    Idempotent for the same directory; switching directories closes the
    previous store first. Any validation failure (corruption, schema or
    fingerprint mismatch) warns once per directory and leaves the run on
    cold in-memory caches."""
    global ACTIVE
    resolved = resolve_cache_dir(cache_dir)
    if resolved is None:
        deactivate()
        return None
    path = os.path.abspath(store_path(resolved))
    if ACTIVE is not None and ACTIVE.path == path:
        return ACTIVE
    deactivate()
    if path in _REJECTED:
        return None
    max_entries = DEFAULT_MAX_ENTRIES
    env_cap = os.environ.get("REPRO_CACHE_MAX_ENTRIES")
    if env_cap:
        try:
            max_entries = max(1, int(env_cap))
        except ValueError:
            pass
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        ACTIVE = VerdictStore(path, max_entries=max_entries)
    except (StoreInvalid, OSError) as exc:
        _REJECTED.add(path)
        _ERRORS.inc()
        warnings.warn(
            f"persistent verdict store disabled ({exc}); continuing with"
            " cold in-memory caches",
            RuntimeWarning,
            stacklevel=2,
        )
        ACTIVE = None
        return None
    atexit.register(_close_if_active, ACTIVE)
    return ACTIVE


def deactivate() -> None:
    """Close and detach the process-wide store (no-op when inactive)."""
    global ACTIVE
    if ACTIVE is not None:
        store, ACTIVE = ACTIVE, None
        store.close()


def _close_if_active(store: VerdictStore) -> None:
    # atexit hook: flush the write-behind queue on interpreter shutdown
    # (process-pool workers exit without ever calling driver.close()).
    if ACTIVE is store:
        deactivate()


def stats_for_dir(cache_dir: str) -> Optional[dict]:
    """Read-only stats for ``repro cache stats`` without activating the
    store for the process (and without creating a missing file)."""
    path = os.path.abspath(store_path(cache_dir))
    if not os.path.exists(path):
        return None
    if ACTIVE is not None and ACTIVE.path == path:
        return ACTIVE.stats()
    try:
        store = VerdictStore(path)
    except StoreInvalid as exc:
        return {"path": path, "error": str(exc)}
    try:
        return store.stats()
    finally:
        store.close()
