"""Cross-cutting memoization & subsumption layer.

Thresher's value proposition is pruning infeasible paths early; this
package makes the pruning itself cheap by never paying for the same work
twice:

* :mod:`repro.perf.memo` — LRU-bounded memo tables in front of the
  decision procedure: ``check_sat``/``entails`` verdicts keyed on the
  canonical frozen constraint set (terms are hash-consed by
  :mod:`repro.solver.terms`, so key construction is cheap), plus the
  per-component verdict table of the relevance-partitioned solver path
  (:mod:`repro.solver.partition`), where verdicts are cached per
  variable-connected constraint fragment and additionally reused from
  parent states via per-lineage solver contexts;
* :mod:`repro.perf.cache` — a lock-striped **refuted-state cache** shared
  across refutation jobs: once a whole search completes REFUTED, every
  query it recorded at loop heads and procedure boundaries is a proven
  dead end, and any later state that entails one of them can be dropped
  before expansion — across branches, loop iterations, edges, and
  concurrent driver jobs.

Every layer reports hit/miss counters into :mod:`repro.obs.metrics`
(``--metrics``) and the aggregate :func:`cache_report` is rolled into the
driver's JSON run report. Every layer is toggleable (``--no-memo``,
``--no-subsumption``, ``--no-partition`` / ``SearchConfig.memoize_solver``
/ ``SearchConfig.state_subsumption`` / ``SearchConfig.partition_solver``)
so ablation benchmarks can quantify each one.
"""

from __future__ import annotations

from ..obs import metrics
from .cache import RefutedStateCache
from .memo import SOLVER_MEMO, SOLVER_PARTITION, LRUCache, SolverMemo, SolverPartition

#: Counters that describe cache behavior; snapshotted per process so the
#: driver can merge process-pool workers' tallies into one report.
CACHE_METRIC_NAMES = (
    "solver.checks",
    "solver.unsat",
    "solver.entails",
    "solver.memo_hits",
    "solver.memo_misses",
    "solver.entails_memo_hits",
    "solver.entails_memo_misses",
    "solver.partitions",
    "solver.context_hits",
    "solver.component_memo_hits",
    "solver.component_memo_misses",
    "solver.fastpath_unsat",
    "executor.refuted_cache_hits",
    "executor.refuted_cache_misses",
    "executor.worklist_subsumed",
    "executor.entails_calls",
    "executor.states_explored",
    "pointsto.noop_pops_skipped",
    "pointsto.delta_propagated",
    # Persistent verdict store (repro.perf.store): disk-backed tiers.
    "store.hits",
    "store.misses",
    "store.writes",
    "store.evictions",
    "store.errors",
)


def refresh_intern_gauges() -> None:
    """Publish the solver-term intern-table tallies and the memo-table
    sizes as gauges (the hot paths keep plain ints/dicts; this is the
    flush point)."""
    from ..solver import terms

    stats = terms.intern_stats()
    metrics.gauge("solver.intern_hits").set(stats["hits"])
    metrics.gauge("solver.intern_misses").set(stats["misses"])
    metrics.gauge("solver.intern_size").set(stats["size"])
    sizes = SOLVER_MEMO.sizes()
    metrics.gauge("solver.memo_check_size").set(sizes["check"])
    metrics.gauge("solver.memo_component_size").set(sizes["component"])
    metrics.gauge("solver.memo_entailment_size").set(sizes["entailment"])
    metrics.gauge("solver.memo_capacity").set(sizes["capacity"])


def cache_stats_snapshot() -> dict:
    """This process's cumulative cache counters, as a plain dict (cheap to
    pickle back from process-pool workers)."""
    refresh_intern_gauges()
    out: dict = {}
    for name in CACHE_METRIC_NAMES:
        instrument = metrics.REGISTRY.get(name)
        out[name] = instrument.value if instrument is not None else 0
    for name in ("solver.intern_hits", "solver.intern_misses", "solver.intern_size"):
        instrument = metrics.REGISTRY.get(name)
        out[name] = instrument.value if instrument is not None else 0
    return out


def _rate(hits: float, misses: float) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def cache_report(extra_snapshots: list | None = None) -> dict:
    """The run report's ``cache`` section: this process's counters merged
    with any process-pool workers' snapshots, with per-cache hit rates."""
    merged = cache_stats_snapshot()
    for snap in extra_snapshots or []:
        for name, value in snap.items():
            merged[name] = merged.get(name, 0) + value
    return {
        "counters": merged,
        "solver_memo": {
            "hits": merged.get("solver.memo_hits", 0),
            "misses": merged.get("solver.memo_misses", 0),
            "hit_rate": _rate(
                merged.get("solver.memo_hits", 0),
                merged.get("solver.memo_misses", 0),
            ),
        },
        "entails_memo": {
            "hits": merged.get("solver.entails_memo_hits", 0),
            "misses": merged.get("solver.entails_memo_misses", 0),
            "hit_rate": _rate(
                merged.get("solver.entails_memo_hits", 0),
                merged.get("solver.entails_memo_misses", 0),
            ),
        },
        "refuted_states": {
            "hits": merged.get("executor.refuted_cache_hits", 0),
            "misses": merged.get("executor.refuted_cache_misses", 0),
            "hit_rate": _rate(
                merged.get("executor.refuted_cache_hits", 0),
                merged.get("executor.refuted_cache_misses", 0),
            ),
        },
        "component_memo": {
            "hits": merged.get("solver.component_memo_hits", 0),
            "misses": merged.get("solver.component_memo_misses", 0),
            "hit_rate": _rate(
                merged.get("solver.component_memo_hits", 0),
                merged.get("solver.component_memo_misses", 0),
            ),
        },
        "solver_context": {
            "hits": merged.get("solver.context_hits", 0),
            "partitioned_queries": merged.get("solver.partitions", 0),
            "fastpath_unsat": merged.get("solver.fastpath_unsat", 0),
        },
        "term_intern": {
            "hits": merged.get("solver.intern_hits", 0),
            "misses": merged.get("solver.intern_misses", 0),
            "hit_rate": _rate(
                merged.get("solver.intern_hits", 0),
                merged.get("solver.intern_misses", 0),
            ),
        },
        "worklist_subsumed": merged.get("executor.worklist_subsumed", 0),
        # Per-tier efficacy: how each answered-without-deciding tier
        # contributed, against the decisions that actually ran.
        "tiers": {
            "context_hits": merged.get("solver.context_hits", 0),
            "component_memo_hits": merged.get("solver.component_memo_hits", 0),
            "whole_query_memo_hits": merged.get("solver.memo_hits", 0),
            "store_hits": merged.get("store.hits", 0),
            "fastpath_unsat": merged.get("solver.fastpath_unsat", 0),
            "decisions": merged.get("solver.checks", 0),
        },
        "store": _store_section(merged),
    }


def _store_section(merged: dict) -> dict:
    """The persistent verdict store's slice of the run report: merged
    hit/miss/write/evict counters (this process + any workers), plus the
    open store's durable identity when one is active."""
    from . import store as _store

    section = {
        "enabled": _store.ACTIVE is not None,
        "hits": merged.get("store.hits", 0),
        "misses": merged.get("store.misses", 0),
        "writes": merged.get("store.writes", 0),
        "evictions": merged.get("store.evictions", 0),
        "errors": merged.get("store.errors", 0),
        "hit_rate": _rate(
            merged.get("store.hits", 0), merged.get("store.misses", 0)
        ),
    }
    if _store.ACTIVE is not None:
        durable = _store.ACTIVE.stats()
        section.update(
            path=durable["path"],
            fingerprint=durable["fingerprint"],
            entries=durable["entries"],
            refuted_entries=durable["refuted_entries"],
            bytes=durable["bytes"],
        )
    return section


__all__ = [
    "SOLVER_MEMO",
    "SOLVER_PARTITION",
    "SolverMemo",
    "SolverPartition",
    "LRUCache",
    "RefutedStateCache",
    "CACHE_METRIC_NAMES",
    "cache_stats_snapshot",
    "cache_report",
    "refresh_intern_gauges",
]
