"""Cross-search refuted-state cache with entailment subsumption.

When a witness-refutation search completes REFUTED, every query it
recorded at a loop head or procedure boundary is a *proven* dead end: all
path programs continuing from that point under that query were refuted.
Because the continuation at such a point is determined by the point key
plus the query's stack signature (the chain of pending call sites), the
refutation transfers to *any* later search over the same program, points-to
result, and root: a new state ``C`` at the same point whose query entails a
cached refuted query ``R`` (``C ⊨ R``, i.e. ``C`` is stronger) can be
dropped before expansion.

What is deliberately **not** cached:

* states from searches that end WITNESSED or TIMEOUT — their recorded
  queries were never fully explored, so nothing is proven about them;
* states recorded during loop-invariant subwalks
  (:meth:`repro.symbolic.executor.Engine.run_subwalk`) — a subwalk's
  continuation is truncated to the loop body, so "refuted there" does not
  mean "refuted under the full continuation".

The store is **lock-striped**: keys hash onto independently locked
segments so the driver's thread-pool workers rarely contend. Entailment
probes run *under* the stripe lock because structural entailment
(:func:`repro.symbolic.simplification.query_entails`) path-compresses the
stored query's union-find — a benign mutation single-threaded, a data race
otherwise. A cache instance must never be shared across different
programs/points-to results/roots; the driver scopes one per run.

Two sharing mechanisms layer on top:

* **snapshot/merge** — process-pool workers cannot share the in-process
  cache, so each ships :meth:`snapshot` (hit/miss totals plus per-point
  hit counts) back with its results and the driver folds them in with
  :meth:`merge_snapshot`, which *sums* — a worker's tallies add to the
  parent's, they never replace them;
* **persistence** — :meth:`bind_store` seeds the cache from the
  :mod:`repro.perf.store` verdict store (entries proven by earlier runs
  over the same program fingerprint) and write-through-persists every
  entry this run proves, so the next cold start begins where this one
  ended.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from ..obs import metrics

_HITS = metrics.counter("executor.refuted_cache_hits")
_MISSES = metrics.counter("executor.refuted_cache_misses")

# Resolved lazily to keep this module importable from the symbolic layer
# without a package-init cycle.
_query_entails = None


def _entails(strong, weak) -> bool:
    global _query_entails
    if _query_entails is None:
        from ..symbolic.simplification import query_entails

        _query_entails = query_entails
    return _query_entails(strong, weak)


class RefutedStateCache:
    """Striped map ``(point key, stack signature) -> refuted queries``."""

    __slots__ = (
        "max_per_point",
        "_stripes",
        "_locks",
        "_hits",
        "_misses",
        "_point_hits",
        "_tally_lock",
        "_store",
        "_store_scope",
    )

    def __init__(self, stripes: int = 16, max_per_point: int = 64) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        self.max_per_point = max_per_point
        self._stripes: list[dict] = [{} for _ in range(stripes)]
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._hits = 0
        self._misses = 0
        #: Per-point hit counts — the LRU signal for the persistent store
        #: and the payload process-pool merges must *sum*, never reset.
        self._point_hits: dict[tuple, int] = {}
        self._tally_lock = threading.Lock()
        self._store = None
        self._store_scope: Optional[str] = None

    def _segment(self, key) -> tuple[dict, threading.Lock]:
        index = hash(key) % len(self._stripes)
        return self._stripes[index], self._locks[index]

    def subsumes(self, key: tuple, query) -> bool:
        """True if ``query`` entails some cached refuted query at ``key``
        (so the caller may drop it as a proven dead end)."""
        segment, lock = self._segment(key)
        with lock:
            refuted = segment.get(key)
            if refuted:
                for old in refuted:
                    if _entails(query, old):
                        with self._tally_lock:
                            self._hits += 1
                            self._point_hits[key] = (
                                self._point_hits.get(key, 0) + 1
                            )
                        _HITS.inc()
                        return True
        with self._tally_lock:
            self._misses += 1
        _MISSES.inc()
        return False

    def add_many(self, entries: Iterable[tuple[tuple, object]]) -> None:
        """Flush ``(key, refuted query)`` pairs from a completed REFUTED
        search. Queries must be private snapshots (``Query.copy()``) — the
        cache takes ownership and later mutates them (path compression).
        Entries accepted here are also write-through-persisted when a
        store is bound (:meth:`bind_store`)."""
        added = self._insert(entries)
        if added and self._store is not None:
            self._store.put_refuted(self._store_scope, added)

    def seed(self, entries: Iterable[tuple[tuple, object]]) -> int:
        """Pre-load entries recovered from the persistent store — exactly
        :meth:`add_many` minus the write-through (they are already on
        disk). Returns the number inserted."""
        return len(self._insert(entries))

    def _insert(self, entries) -> list[tuple[tuple, object]]:
        added = []
        for key, query in entries:
            segment, lock = self._segment(key)
            with lock:
                stored = segment.setdefault(key, [])
                if len(stored) < self.max_per_point:
                    stored.append(query)
                    added.append((key, query))
        return added

    def bind_store(self, store, scope: str) -> int:
        """Back this cache with the persistent verdict store: seed every
        entry previously proven under ``scope`` and write-through-persist
        entries proven from now on. Returns the number seeded."""
        seeded = self.seed(store.load_refuted(scope))
        self._store = store
        self._store_scope = scope
        return seeded

    def flush_store_tallies(self) -> None:
        """Push accumulated per-point hit counts to the bound store (its
        cross-run LRU signal). Called by the driver at close."""
        if self._store is None:
            return
        with self._tally_lock:
            tallies = dict(self._point_hits)
        self._store.note_refuted_hits(self._store_scope, tallies)

    def snapshot(self) -> dict:
        """This cache's tallies as plain data (cheap to pickle back from a
        process-pool worker)."""
        with self._tally_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "point_hits": dict(self._point_hits),
            }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this cache. All tallies
        are **summed** — merging must never reset a count, or per-entry
        hit history silently vanishes whenever the process pool is used."""
        with self._tally_lock:
            self._hits += snap.get("hits", 0)
            self._misses += snap.get("misses", 0)
            for key, count in snap.get("point_hits", {}).items():
                self._point_hits[key] = self._point_hits.get(key, 0) + count

    def clear(self) -> None:
        for segment, lock in zip(self._stripes, self._locks):
            with lock:
                segment.clear()
        with self._tally_lock:
            self._point_hits.clear()

    def stats(self) -> dict:
        points = 0
        states = 0
        for segment, lock in zip(self._stripes, self._locks):
            with lock:
                points += len(segment)
                states += sum(len(v) for v in segment.values())
        with self._tally_lock:
            return {
                "points": points,
                "states": states,
                "hits": self._hits,
                "misses": self._misses,
            }

    def __len__(self) -> int:
        return self.stats()["states"]
