"""The Activity-leak client: alarm enumeration and the refutation loop.

An *alarm* is a pair (static field, Activity abstract location) connected
in the flow-insensitive points-to graph. For each alarm the driver walks
the loop of Section 2:

    find a heap path from the field to the Activity;
    try to refute each edge on the path (producer-by-producer witness
    search); a refuted edge is deleted and a new path is sought; if every
    edge of some path is witnessed (or timed out), the alarm is confirmed;
    if the field and the Activity become disconnected, the alarm is
    filtered out.

Refuted edges are shared across alarms (a refutation is a fact about the
whole program), matching the paper's per-edge accounting (RefEdg ≥ RefA).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..engine import RefutationDriver, RunReport
from ..ir import build_program
from ..lang import frontend
from ..pointsto import (
    ContainerSensitive,
    HeapEdge,
    PointsToResult,
    StaticFieldNode,
    analyze,
    find_alarms,
    find_heap_path,
)
from ..pointsto.graph import AbsLoc
from ..symbolic import SearchConfig
from ..symbolic.stats import REFUTED, TIMEOUT, WITNESSED
from .harness import build_full_source
from .library import CONTAINER_CLASSES, EMPTY_TABLE_ANNOTATIONS, library_class_names

ALARM_REFUTED = "refuted"
ALARM_CONFIRMED = "confirmed"


@dataclass
class AlarmResult:
    root: StaticFieldNode
    target: AbsLoc
    status: str  # refuted | confirmed
    witnessed_path: Optional[list[HeapEdge]] = None
    edges_examined: int = 0

    @property
    def refuted(self) -> bool:
        return self.status == ALARM_REFUTED


@dataclass
class LeakReport:
    """Everything Table 1 reports for one app/configuration."""

    app_name: str
    annotated: bool
    alarms: list[AlarmResult] = field(default_factory=list)
    edge_results: dict = field(default_factory=dict)  # EdgeKey -> EdgeResult
    seconds: float = 0.0
    call_graph_commands: int = 0
    #: Structured per-edge telemetry of the run (see repro.engine.report).
    run_report: Optional[RunReport] = None

    # -- Table 1 columns ------------------------------------------------------

    @property
    def num_alarms(self) -> int:
        return len(self.alarms)

    @property
    def refuted_alarms(self) -> int:
        return sum(1 for a in self.alarms if a.refuted)

    @property
    def reported_alarms(self) -> list[AlarmResult]:
        return [a for a in self.alarms if not a.refuted]

    @property
    def fields(self) -> int:
        return len({(a.root.class_name, a.root.field) for a in self.alarms})

    @property
    def refuted_fields(self) -> int:
        """Fields for which every alarm was refuted (RefFlds)."""
        by_field: dict[tuple[str, str], bool] = {}
        for alarm in self.alarms:
            key = (alarm.root.class_name, alarm.root.field)
            by_field[key] = by_field.get(key, True) and alarm.refuted
        return sum(1 for refuted in by_field.values() if refuted)

    def _count(self, status: str) -> int:
        return sum(1 for r in self.edge_results.values() if r.status == status)

    @property
    def edges_refuted(self) -> int:
        return self._count(REFUTED)

    @property
    def edges_witnessed(self) -> int:
        return self._count(WITNESSED)

    @property
    def edge_timeouts(self) -> int:
        return self._count(TIMEOUT)


class LeakChecker:
    """One end-to-end run of the Thresher pipeline on an app."""

    def __init__(
        self,
        app_source: str,
        app_name: str = "app",
        annotated: bool = False,
        config: Optional[SearchConfig] = None,
        include_library: bool = True,
        target_class: str = "Activity",
        jobs: int = 1,
        deadline: Optional[float] = None,
        backend: Optional[str] = None,
        driver: Optional[RefutationDriver] = None,
        on_event: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.app_name = app_name
        self.annotated = annotated
        self.target_class = target_class
        full_source = build_full_source(app_source, include_library)
        checked = frontend(full_source)
        self.program = build_program(checked)
        policy = ContainerSensitive(
            containers=set(CONTAINER_CLASSES), class_table=checked.table
        )
        self.pta: PointsToResult = analyze(
            self.program,
            policy=policy,
            empty_statics=set(EMPTY_TABLE_ANNOTATIONS) if annotated else None,
        )
        self.driver = driver or RefutationDriver(
            self.pta,
            config or SearchConfig(),
            jobs=jobs,
            deadline=deadline,
            backend=backend,
            on_event=on_event,
        )
        self.config = self.driver.config
        #: The driver's serial engine — kept for direct use (e.g. witness
        #: rendering); shares its result cache with the parallel workers.
        self.engine = self.driver.engine

    # -- pipeline --------------------------------------------------------------

    def find_alarms(self) -> list[tuple[StaticFieldNode, AbsLoc]]:
        alarms = find_alarms(
            self.pta.graph, self.program.class_table, self.target_class
        )
        # Library internals can't leak app activities through their own
        # statics unless an app value flows there — keep all roots (the
        # paper's Vec.EMPTY root is exactly such a library static).
        return alarms

    def run(self) -> LeakReport:
        start = time.perf_counter()
        report = LeakReport(self.app_name, self.annotated)
        report.call_graph_commands = sum(
            1
            for qname in self.pta.call_graph.reachable_methods
            if qname in self.program.methods
            for _ in self.program.commands_of(qname)
        )
        refuted_edges: set[HeapEdge] = set()
        for root, target in self.find_alarms():
            result = self._check_alarm(root, target, refuted_edges, report)
            report.alarms.append(result)
        report.edge_results = self.engine.edge_results()
        report.seconds = time.perf_counter() - start
        report.run_report = self.driver.build_report(
            app=self.app_name, command="check"
        )
        report.run_report.wall_seconds = report.seconds
        self.driver.close()
        return report

    def _check_alarm(
        self,
        root: StaticFieldNode,
        target: AbsLoc,
        refuted_edges: set[HeapEdge],
        report: LeakReport,
    ) -> AlarmResult:
        examined = 0
        while True:
            path = find_heap_path(self.pta.graph, root, target, refuted_edges)
            if path is None:
                return AlarmResult(root, target, ALARM_REFUTED, None, examined)
            progressed = False
            # The driver refutes the path's edges — sequentially with early
            # exit when jobs=1 (bit-identical to the seed loop), in
            # parallel otherwise. Either way the loop below consumes the
            # results in path order, so alarm verdicts are deterministic.
            for edge, result in self.driver.refute_path(path):
                examined += 1
                if result.refuted:
                    refuted_edges.add(edge)
                    progressed = True
                    break
            if not progressed:
                # Every edge on this path witnessed or timed out: confirmed.
                return AlarmResult(root, target, ALARM_CONFIRMED, path, examined)


def check_app(
    app_source: str,
    app_name: str = "app",
    annotated: bool = False,
    config: Optional[SearchConfig] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
    backend: Optional[str] = None,
) -> LeakReport:
    """Convenience one-shot entry point."""
    return LeakChecker(
        app_source,
        app_name,
        annotated,
        config,
        jobs=jobs,
        deadline=deadline,
        backend=backend,
    ).run()
