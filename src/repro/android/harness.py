"""Harness synthesis: a ``main`` that exercises every event handler.

Mirrors the paper's setup: "We use a top-level harness that invokes every
event handler defined for an application. Our harness allows event handlers
to be invoked in any order, but insists that each handler is called only
once in order to prevent termination issues."

We realize "called only once, possibly skipped" with nondeterministically
guarded calls in lifecycle order; the guard nondeterminism gives the
analysis every subset of handler invocations. (Arbitrary inter-handler
orderings beyond the lifecycle order are approximated — see DESIGN.md.)
"""

from __future__ import annotations

from ..lang import ast, frontend, parse_program
from ..lang.types import ClassTable, MethodInfo
from .library import LIBRARY_SOURCE
from .lifecycle import component_classes, default_argument, handlers_of

HARNESS_CLASS = "AndroidHarness"


def build_full_source(app_source: str, include_library: bool = True) -> str:
    """Library + app + synthesized harness, as one compilation unit.

    The library comes first so that its class initializers (e.g.
    ``Vec.EMPTY``) run before any app ``<clinit>`` that allocates library
    objects — our stand-in for Java's lazy class initialization.
    """
    library = LIBRARY_SOURCE if include_library else ""
    combined = library + "\n" + app_source
    checked = frontend(combined)
    app_classes = {cls.name for cls in parse_program(app_source).classes}
    harness = generate_harness(checked.table, app_classes)
    return combined + "\n" + harness


def generate_harness(table: ClassTable, app_classes: set[str]) -> str:
    lines = [f"class {HARNESS_CLASS} {{", "    static void main() {"]
    components = component_classes(table, app_classes)
    for index, class_name in enumerate(components):
        var = f"act{index}"
        ctor_args = _ctor_args(table, class_name)
        lines.append(f"        {class_name} {var} = new {class_name}({ctor_args});")
        for handler in handlers_of(table, class_name):
            if handler.method.decl_class not in app_classes:
                continue  # library-defined defaults carry no app logic
            args = _handler_args(table, class_name, var, handler.method)
            lines.append(
                f"        if (nondet()) {{ {var}.{handler.name}({args}); }}"
            )
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _ctor_args(table: ClassTable, class_name: str) -> str:
    ctor = table.lookup_method(class_name, "<init>")
    if ctor is None:
        return ""
    return ", ".join(default_argument(table, p.type) for p in ctor.params)


def _handler_args(
    table: ClassTable, class_name: str, activity_var: str, method: MethodInfo
) -> str:
    args = []
    for param in method.params:
        if isinstance(param.type, ast.ClassType) and table.is_assignable(
            ast.ClassType(class_name), param.type
        ):
            # Context-like parameters receive the activity itself — the
            # typical way an Activity reference escapes into helpers.
            args.append(activity_var)
        else:
            args.append(default_argument(table, param.type))
    return ", ".join(args)
