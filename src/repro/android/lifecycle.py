"""Activity lifecycle modelling: event-handler discovery.

Android invokes lifecycle callbacks (``onCreate``, ``onDestroy``, ...) and
UI event handlers (``onClick``, ...) on application classes; the paper's
harness "invokes every event handler defined for an application ... in any
order, but insists that each handler is called only once". This module
discovers the handlers; :mod:`repro.android.harness` builds the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.types import ClassTable, MethodInfo

#: Well-known lifecycle callback names, in canonical lifecycle order.
LIFECYCLE_ORDER = [
    "onCreate",
    "onAttach",
    "onStart",
    "onStartCommand",
    "onResume",
    "onReceive",
    "onClick",
    "onItemSelected",
    "onPause",
    "onStop",
    "onConfigurationChanged",
    "onDestroy",
]


@dataclass
class Handler:
    class_name: str
    method: MethodInfo

    @property
    def name(self) -> str:
        return self.method.name


def is_event_handler(method: MethodInfo) -> bool:
    """Event handlers: instance methods named ``on*`` (Android convention)."""
    return (
        not method.is_static
        and not method.is_constructor
        and method.name.startswith("on")
        and len(method.name) > 2
        and method.name[2].isupper()
    )


def activity_classes(table: ClassTable, app_classes: set[str]) -> list[str]:
    """Application classes that are (subclasses of) Activity."""
    out = []
    for name in sorted(app_classes):
        if name in table and table.is_subclass(name, "Activity"):
            out.append(name)
    return out


def component_classes(table: ClassTable, app_classes: set[str]) -> list[str]:
    """Application classes that are Android components (Activity, Service,
    BroadcastReceiver, Fragment) — everything the framework drives, hence
    everything the harness must drive."""
    from .library import COMPONENT_CLASSES

    out = []
    for name in sorted(app_classes):
        if name not in table:
            continue
        if any(
            base in table.classes and table.is_subclass(name, base)
            for base in COMPONENT_CLASSES
        ):
            out.append(name)
    return out


def handlers_of(table: ClassTable, class_name: str) -> list[Handler]:
    """All event handlers callable on ``class_name``, lifecycle-ordered."""
    found: dict[str, Handler] = {}
    for info in table.ancestors(class_name):
        for method in info.methods.values():
            if is_event_handler(method) and method.name not in found:
                found[method.name] = Handler(class_name, method)

    def order(handler: Handler) -> tuple[int, str]:
        try:
            return (LIFECYCLE_ORDER.index(handler.name), handler.name)
        except ValueError:
            return (len(LIFECYCLE_ORDER), handler.name)

    return sorted(found.values(), key=order)


def default_argument(table: ClassTable, typ: ast.Type) -> str:
    """Mini-Java source text for a synthesized handler argument."""
    if typ == ast.INT:
        return "0"
    if typ == ast.BOOLEAN:
        return "false"
    if isinstance(typ, ast.ArrayType):
        return f"new {typ.elem}[1]"
    if isinstance(typ, ast.ClassType):
        info = table.classes.get(typ.name)
        if info is None:
            return "null"
        ctor = table.lookup_method(typ.name, "<init>")
        if ctor is None or not ctor.params:
            return f"new {typ.name}()"
        return "null"
    return "null"
