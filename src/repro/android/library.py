"""The mini Android library, written in the mini-Java language.

The original evaluation analyzed Android 2.3.3 sources; our substitute
implements the classes that matter for the Activity-leak client:

* the ``Context``/``Activity`` hierarchy and UI classes that hold parent
  pointers back to their Activity (``View``, ``Adapter``,
  ``CursorAdapter.mContext`` — the field involved in the K9Mail leak of
  the paper's Figure 5);
* ``Vec``, the growable array of the paper's Figure 1, implemented with
  the null-object pattern (a shared static ``EMPTY`` backing array);
* ``HashMap``, implemented like Android's with a shared static
  ``EMPTY_TABLE`` — the major source of flow-insensitive pollution that
  the paper's single annotation (``Ann?=Y``) targets.

Container classes (``CONTAINER_CLASSES``) get object-sensitive contexts in
the points-to analysis, mirroring WALA's 0-1-Container-CFA.
"""

from __future__ import annotations

LIBRARY_SOURCE = """
// ---------------------------------------------------------------- contexts --
class Context { }

class Application extends Context { }

class Activity extends Context {
    boolean destroyed;
    void finish() { this.destroyed = true; }
}

class Service extends Context {
    boolean running;
}

class BroadcastReceiver {
    Context lastContext;
}

class Fragment {
    Activity mActivity;
    void attach(Activity a) { this.mActivity = a; }
    Activity getActivity() { return this.mActivity; }
}

class AsyncTask {
    Object params;
    Object result;
    void execute(Object p) {
        this.params = p;
        this.result = this.doInBackground(p);
        this.onPostExecute(this.result);
    }
    Object doInBackground(Object p) { return null; }
    void onPostExecute(Object r) { }
}

class Bundle {
    Vec values;
    Bundle() { this.values = new Vec(); }
    void put(Object value) { this.values.push(value); }
    Object get(int i) { return this.values.get(i); }
}

class Intent {
    Bundle extras;
    Intent() { this.extras = new Bundle(); }
}

// --------------------------------------------------------------------- ui --
class View {
    Context mContext;
    View parent;
    View(Context c) { this.mContext = c; }
    Context getContext() { return this.mContext; }
    void setParent(View p) { this.parent = p; }
}

class TextView extends View {
    TextView(Context c) { super(c); }
}

class Button extends View {
    OnClickListener listener;
    Button(Context c) { super(c); }
    void setOnClickListener(OnClickListener l) { this.listener = l; }
}

class OnClickListener { }

class Adapter { }

class CursorAdapter extends Adapter {
    Context mContext;
    CursorAdapter(Context context) { this.mContext = context; }
}

class ResourceCursorAdapter extends CursorAdapter {
    ResourceCursorAdapter(Context context) { super(context); }
}

class Cursor {
    Context owner;
}

// ------------------------------------------------------------- containers --
// The growable array of the paper's Figure 1: all empty Vecs share the
// static EMPTY array (the null-object pattern); push() grows before the
// first write because the constructor establishes sz = 0 > cap = -1.
class Vec {
    static Object[] EMPTY = new Object[1];
    int sz;
    int cap;
    Object[] tbl;
    Vec() {
        this.sz = 0;
        this.cap = 0 - 1;
        this.tbl = Vec.EMPTY;
    }
    void push(Object val) {
        Object[] oldtbl = this.tbl;
        if (this.sz >= this.cap) {
            this.cap = this.tbl.length * 2;
            this.tbl = new Object[this.cap];
            for (int i = 0; i < this.sz; i++) {
                this.tbl[i] = oldtbl[i];
            }
        }
        this.tbl[this.sz] = val;
        this.sz = this.sz + 1;
    }
    Object get(int i) {
        if (i < this.sz) { return this.tbl[i]; }
        return null;
    }
    int size() { return this.sz; }
}

// Android-style HashMap: empty maps share the static EMPTY_TABLE, and
// put() doubles the table before the first insertion (size starts at 0,
// threshold at -1). This is the class the paper's Ann?=Y annotation
// targets: EMPTY_TABLE's contents may be declared always-empty.
class MapEntry {
    Object key;
    Object value;
    MapEntry(Object k, Object v) { this.key = k; this.value = v; }
}

class HashMap {
    static Object[] EMPTY_TABLE = new Object[2];
    int size;
    int threshold;
    Object[] table;
    HashMap() {
        this.size = 0;
        this.threshold = 0 - 1;
        this.table = HashMap.EMPTY_TABLE;
    }
    void put(Object key, Object value) {
        Object[] oldtab = this.table;
        if (this.size >= this.threshold) {
            this.threshold = this.table.length * 2;
            this.table = new Object[this.threshold];
            for (int i = 0; i < this.size; i++) {
                this.table[i] = oldtab[i];
            }
        }
        MapEntry e = new MapEntry(key, value);
        this.table[this.size] = e;
        this.size = this.size + 1;
    }
    Object get(Object key) {
        for (int i = 0; i < this.size; i++) {
            Object slot = this.table[i];
            if (slot != null) {
                return slot;
            }
        }
        return null;
    }
    int size() { return this.size; }
}

// ArrayList-style growable list WITHOUT the null-object pattern: each list
// owns its backing array from construction. Included as the contrast case:
// it never pollutes a shared static the way Vec/HashMap do.
class ArrayList {
    int count;
    Object[] elems;
    ArrayList() {
        this.count = 0;
        this.elems = new Object[4];
    }
    void add(Object val) {
        if (this.count >= this.elems.length) {
            Object[] old = this.elems;
            this.elems = new Object[this.count * 2];
            for (int i = 0; i < this.count; i++) {
                this.elems[i] = old[i];
            }
        }
        this.elems[this.count] = val;
        this.count = this.count + 1;
    }
    Object get(int i) {
        if (i < this.count) { return this.elems[i]; }
        return null;
    }
    int size() { return this.count; }
}

// ------------------------------------------------------------------ misc --
class Handler {
    Vec messages;
    Handler() { this.messages = new Vec(); }
    void post(Object message) { this.messages.push(message); }
}

class Log {
    static void d(String msg) { }
    static void e(String msg) { }
}
"""

#: Classes analyzed with object-sensitive contexts (0-1-Container-CFA).
CONTAINER_CLASSES = {"Vec", "HashMap", "Bundle", "Handler", "ArrayList"}

#: Component base classes whose app subclasses the harness drives.
COMPONENT_CLASSES = ("Activity", "Service", "BroadcastReceiver", "Fragment")

#: The paper's Ann?=Y annotation: the shared empty table never holds
#: anything.
EMPTY_TABLE_ANNOTATIONS = {("HashMap", "EMPTY_TABLE"), ("Vec", "EMPTY")}

#: Library class names (filled lazily; used to separate app classes).
_LIBRARY_CLASS_NAMES: set[str] = set()


def library_class_names() -> set[str]:
    global _LIBRARY_CLASS_NAMES
    if not _LIBRARY_CLASS_NAMES:
        from ..lang import parse_program

        unit = parse_program(LIBRARY_SOURCE)
        _LIBRARY_CLASS_NAMES = {cls.name for cls in unit.classes}
    return set(_LIBRARY_CLASS_NAMES)
