"""The Android Activity-leak client: mini Android library, lifecycle
harness synthesis, and the alarm-refutation driver."""

from .harness import HARNESS_CLASS, build_full_source, generate_harness
from .leaks import (
    ALARM_CONFIRMED,
    ALARM_REFUTED,
    AlarmResult,
    LeakChecker,
    LeakReport,
    check_app,
)
from .library import (
    CONTAINER_CLASSES,
    EMPTY_TABLE_ANNOTATIONS,
    LIBRARY_SOURCE,
    library_class_names,
)
from .lifecycle import activity_classes, handlers_of, is_event_handler

__all__ = [
    "HARNESS_CLASS",
    "build_full_source",
    "generate_harness",
    "ALARM_CONFIRMED",
    "ALARM_REFUTED",
    "AlarmResult",
    "LeakChecker",
    "LeakReport",
    "check_app",
    "CONTAINER_CLASSES",
    "EMPTY_TABLE_ANNOTATIONS",
    "LIBRARY_SOURCE",
    "library_class_names",
    "activity_classes",
    "handlers_of",
    "is_event_handler",
]
