"""Textual dump of the structured IR, used in debugging and golden tests."""

from __future__ import annotations

from .program import IRMethod, IRProgram
from .stmts import AtomicStmt, Choice, Loop, Seq, Stmt

_INDENT = "  "


def print_program(program: IRProgram) -> str:
    parts = []
    for qname in sorted(program.methods):
        parts.append(print_method(program.methods[qname]))
    return "\n".join(parts)


def print_method(method: IRMethod, show_labels: bool = False) -> str:
    params = ", ".join(method.params)
    lines = [f"method {method.qualified_name}({params}):"]
    lines.extend(_stmt_lines(method.body, 1, show_labels))
    return "\n".join(lines) + "\n"


def print_stmt(stmt: Stmt, show_labels: bool = False) -> str:
    return "\n".join(_stmt_lines(stmt, 0, show_labels))


def _stmt_lines(stmt: Stmt, depth: int, show_labels: bool) -> list[str]:
    pad = _INDENT * depth
    prefix = f"[{stmt.label}] " if show_labels and stmt.label >= 0 else ""
    if isinstance(stmt, AtomicStmt):
        return [f"{pad}{prefix}{stmt.cmd}"]
    if isinstance(stmt, Seq):
        if not stmt.stmts:
            return [f"{pad}{prefix}skip"]
        lines = []
        for child in stmt.stmts:
            lines.extend(_stmt_lines(child, depth, show_labels))
        return lines
    if isinstance(stmt, Choice):
        lines = [f"{pad}{prefix}choice"]
        for i, branch in enumerate(stmt.branches):
            lines.append(f"{pad}{_INDENT}[] branch {i}:")
            lines.extend(_stmt_lines(branch, depth + 2, show_labels))
        return lines
    if isinstance(stmt, Loop):
        lines = [f"{pad}{prefix}loop"]
        lines.extend(_stmt_lines(stmt.body, depth + 1, show_labels))
        return lines
    raise ValueError(f"unknown statement {type(stmt).__name__}")
