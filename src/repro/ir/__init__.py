"""Structured intermediate representation: commands, statements, builder,
program container, printer, and a bounded concrete interpreter."""

from . import instructions
from .builder import LoweringError, build_program
from .instructions import AllocSite, Command
from .interp import Interpreter, Limits, ProducedEdge, Run, heap_reaches
from .printer import print_method, print_program, print_stmt
from .program import (
    CLINIT,
    ENTRY_CLASS,
    ENTRY_METHOD,
    FIN_VAR,
    INIT,
    RET_VAR,
    IRMethod,
    IRProgram,
)
from .stmts import AtomicStmt, Choice, Loop, Seq, Stmt, seq, walk_commands, walk_statements

__all__ = [
    "instructions",
    "LoweringError",
    "build_program",
    "AllocSite",
    "Command",
    "Interpreter",
    "Limits",
    "ProducedEdge",
    "Run",
    "heap_reaches",
    "print_method",
    "print_program",
    "print_stmt",
    "CLINIT",
    "ENTRY_CLASS",
    "ENTRY_METHOD",
    "FIN_VAR",
    "INIT",
    "RET_VAR",
    "IRMethod",
    "IRProgram",
    "AtomicStmt",
    "Choice",
    "Loop",
    "Seq",
    "Stmt",
    "seq",
    "walk_commands",
    "walk_statements",
]


def compile_program(source: str, want_entry: bool = True) -> IRProgram:
    """Front-to-back convenience: parse, check, and lower ``source``."""
    from ..lang import frontend

    return build_program(frontend(source), want_entry=want_entry)
