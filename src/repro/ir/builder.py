"""Lowering from the type-checked AST to the structured IR.

Desugarings performed here (all standard, per Section 3 of the paper):

* ``if (e) s1 else s2``  →  ``(assume e; s1) [] (assume !e; s2)``
* ``while (e) s``        →  ``loop (assume e; s); assume !e``
* early ``return``/``break``/``continue``  →  boolean interrupt flags
  (``$fin`` per method, ``$brk``/``$cnt`` per loop) with guard choices on
  the statements that follow, so the IR stays purely structured;
* expression flattening into three-address atomic commands, with *pure*
  branch guards kept as expression trees on ``assume`` (this enables the
  executor's guard-relevance optimization);
* constructor synthesis: every class gets an ``<init>`` that runs the
  implicit or explicit ``super(...)`` call, then the instance field
  initializers, then the declared constructor body;
* ``<clinit>`` synthesis for static field initializers, invoked from the
  synthesized program entry ``$Program.$entry`` before ``main``.
"""

from __future__ import annotations

from typing import Optional

from ..lang import ast
from ..lang.errors import FrontendError, SourcePosition
from ..lang.types import CheckedProgram, ClassTable, MethodInfo
from . import instructions as ins
from .program import CLINIT, ENTRY_CLASS, FIN_VAR, INIT, RET_VAR, IRMethod, IRProgram
from .stmts import AtomicStmt, Choice, Loop, Seq, Stmt, seq


class LoweringError(FrontendError):
    """Raised when a construct cannot be lowered to the IR."""


def build_program(checked: CheckedProgram, want_entry: bool = True) -> IRProgram:
    """Lower a checked program to IR, synthesize the entry, assign labels."""
    builder = _Builder(checked.table)
    for cls in checked.unit.classes:
        builder.lower_class(cls)
    builder.synthesize_builtin_inits(checked.unit)
    if want_entry:
        builder.synthesize_entry(checked.unit)
    program = builder.program
    program.assign_labels()
    return program


def _is_ref(typ: Optional[ast.Type]) -> bool:
    return typ is not None and typ.is_reference()


class _Builder:
    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.program = IRProgram(table)
        self._site_counter = 0
        self._hint_counters: dict[str, int] = {}
        self._classes_with_clinit: list[str] = []

    # -- allocation sites -------------------------------------------------------

    def fresh_site(self, class_name: str, method: str, kind: str) -> ins.AllocSite:
        if kind == "array":
            stem = "arr"
        elif kind == "string":
            stem = "str"
        else:
            stem = class_name[0].lower() + class_name[1:]
        count = self._hint_counters.get(stem, 0)
        self._hint_counters[stem] = count + 1
        site = ins.AllocSite(
            self._site_counter, class_name, method, kind, hint=f"{stem}{count}"
        )
        self._site_counter += 1
        self.program.alloc_sites.append(site)
        return site

    # -- class lowering ------------------------------------------------------------

    def lower_class(self, cls: ast.ClassDecl) -> None:
        info = self.table.get(cls.name)
        declared_ctor = info.methods.get(INIT)
        self.program.add_method(self._lower_constructor(cls, declared_ctor))
        for mth in cls.methods:
            if mth.is_constructor:
                continue
            minfo = info.methods[mth.name]
            lowerer = _MethodLowerer(self, cls.name, minfo)
            self.program.add_method(lowerer.lower(minfo.body))
        static_inits = [
            fld for fld in cls.fields if fld.is_static and fld.init is not None
        ]
        if static_inits:
            self._classes_with_clinit.append(cls.name)
            clinit = MethodInfo(
                name=CLINIT,
                params=[],
                ret_type=ast.VOID,
                is_static=True,
                is_constructor=False,
                decl_class=cls.name,
                body=ast.Block(cls.pos, []),
                pos=cls.pos,
            )
            lowerer = _MethodLowerer(self, cls.name, clinit)
            stmts: list[Stmt] = []
            for fld in static_inits:
                assert fld.init is not None
                pre, atom = lowerer.lower_expr(fld.init)
                stmts.extend(pre)
                stmts.append(
                    lowerer.atomic(
                        ins.StaticWrite(cls.name, fld.name, atom), fld.pos
                    )
                )
            self.program.add_method(lowerer.finish(seq(stmts)))

    def _lower_constructor(
        self, cls: ast.ClassDecl, declared: Optional[MethodInfo]
    ) -> IRMethod:
        info = self.table.get(cls.name)
        params = declared.params if declared is not None else []
        ctor_info = MethodInfo(
            name=INIT,
            params=params,
            ret_type=ast.VOID,
            is_static=False,
            is_constructor=True,
            decl_class=cls.name,
            body=declared.body if declared is not None else ast.Block(cls.pos, []),
            pos=cls.pos,
        )
        lowerer = _MethodLowerer(self, cls.name, ctor_info)
        stmts: list[Stmt] = []
        body_stmts = list(ctor_info.body.stmts)
        explicit_super: Optional[ast.SuperCall] = None
        if (
            body_stmts
            and isinstance(body_stmts[0], ast.ExprStmt)
            and isinstance(body_stmts[0].expr, ast.SuperCall)
        ):
            explicit_super = body_stmts[0].expr
            body_stmts = body_stmts[1:]
        for stmt in body_stmts:
            for sub in _walk_ast(stmt):
                if isinstance(sub, ast.ExprStmt) and isinstance(sub.expr, ast.SuperCall):
                    raise LoweringError(
                        "super(...) must be the first statement of a constructor",
                        sub.pos,
                    )
        # Super-constructor call (explicit or implicit).
        if info.superclass is not None:
            if explicit_super is not None:
                args: list[ins.Atom] = []
                for arg in explicit_super.args:
                    pre, atom = lowerer.lower_expr(arg)
                    stmts.extend(pre)
                    args.append(atom)
                target_class = explicit_super.decl_class or info.superclass
                stmts.append(
                    lowerer.atomic(
                        ins.Invoke(None, "this", INIT, args, target_class, "special"),
                        explicit_super.pos,
                    )
                )
            else:
                super_ctor = self.table.get(info.superclass).methods.get(INIT)
                if super_ctor is not None and super_ctor.params:
                    raise LoweringError(
                        f"constructor of {cls.name!r} must explicitly call"
                        f" super(...) because {info.superclass!r} has a"
                        " parameterized constructor",
                        cls.pos,
                    )
                stmts.append(
                    lowerer.atomic(
                        ins.Invoke(None, "this", INIT, [], info.superclass, "special"),
                        cls.pos,
                    )
                )
        # Instance field initializers declared on this class.
        for fld in cls.fields:
            if fld.is_static or fld.init is None:
                continue
            pre, atom = lowerer.lower_expr(fld.init)
            stmts.extend(pre)
            stmts.append(
                lowerer.atomic(ins.FieldWrite("this", fld.name, atom), fld.pos)
            )
        # The declared constructor body.
        body_ir, _ = lowerer.lower_block_stmts(body_stmts)
        stmts.append(body_ir)
        return lowerer.finish(seq(stmts))

    def synthesize_builtin_inits(self, unit: ast.CompilationUnit) -> None:
        """Constructors for built-in classes not declared in the source."""
        declared = {cls.name for cls in unit.classes}
        for name in ("Object", "String"):
            if name in declared:
                continue
            body = seq([])
            if name != "Object":
                body = seq(
                    [AtomicStmt(ins.Invoke(None, "this", INIT, [], "Object", "special"))]
                )
            self.program.add_method(
                IRMethod(name, INIT, ["this"], body, False, True, False, [True])
            )

    def synthesize_entry(self, unit: ast.CompilationUnit) -> None:
        mains = [
            cls.name
            for cls in unit.classes
            for mth in cls.methods
            if mth.name == "main" and mth.is_static
        ]
        if not mains:
            return
        if len(mains) > 1:
            raise LoweringError(f"multiple main methods: {', '.join(mains)}")
        main_class = mains[0]
        main_info = self.table.lookup_method(main_class, "main")
        assert main_info is not None
        if main_info.params:
            raise LoweringError("main() must take no parameters", main_info.pos)
        stmts: list[Stmt] = [
            AtomicStmt(ins.Invoke(None, None, CLINIT, [], cname, "static"))
            for cname in self._classes_with_clinit
        ]
        stmts.append(AtomicStmt(ins.Invoke(None, None, "main", [], main_class, "static")))
        entry = IRMethod(ENTRY_CLASS, "$entry", [], seq(stmts), True)
        self.program.add_method(entry)
        self.program.entry = entry.qualified_name


def _walk_ast(stmt: ast.Stmt):
    yield stmt
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _walk_ast(child)
    elif isinstance(stmt, ast.If):
        yield from _walk_ast(stmt.then)
        if stmt.orelse is not None:
            yield from _walk_ast(stmt.orelse)
    elif isinstance(stmt, ast.While):
        yield from _walk_ast(stmt.body)


def _has_early_return(body: ast.Block) -> bool:
    """True if some return is not in tail position."""
    tails: set[int] = set()

    def mark_tails(stmt: ast.Stmt) -> None:
        tails.add(id(stmt))
        if isinstance(stmt, ast.Block) and stmt.stmts:
            mark_tails(stmt.stmts[-1])
        elif isinstance(stmt, ast.If):
            mark_tails(stmt.then)
            if stmt.orelse is not None:
                mark_tails(stmt.orelse)

    mark_tails(body)
    for stmt in _walk_ast(body):
        if isinstance(stmt, ast.Return) and id(stmt) not in tails:
            return True
    return False


class _LoopContext:
    """Interrupt flags for one lexical loop."""

    def __init__(self, index: int) -> None:
        self.brk_var = f"$brk{index}"
        self.cnt_var = f"$cnt{index}"
        self.brk_used = False
        self.cnt_used = False


class _MethodLowerer:
    """Lowers one method body to structured IR."""

    def __init__(self, builder: _Builder, class_name: str, minfo: MethodInfo) -> None:
        self.builder = builder
        self.table = builder.table
        self.class_name = class_name
        self.minfo = minfo
        self._temp_counter = 0
        self._loop_counter = 0
        self._used_names: set[str] = set()
        self._scopes: list[dict[str, str]] = [{}]
        self._loops: list[_LoopContext] = []
        self.needs_fin = _has_early_return(minfo.body)
        self.params: list[str] = []
        self.param_ref: list[bool] = []
        if not minfo.is_static:
            self.params.append("this")
            self.param_ref.append(True)
            self._used_names.add("this")
        for param in minfo.params:
            self.params.append(param.name)
            self.param_ref.append(_is_ref(param.type))
            self._used_names.add(param.name)
            self._scopes[0][param.name] = param.name

    # -- small helpers -----------------------------------------------------------

    def atomic(self, cmd: ins.Command, pos: Optional[SourcePosition] = None) -> AtomicStmt:
        if pos is not None:
            cmd.pos = pos
        return AtomicStmt(cmd)

    def fresh_temp(self) -> str:
        name = f"$t{self._temp_counter}"
        self._temp_counter += 1
        return name

    def declare_local(self, name: str) -> str:
        ir_name = name
        k = 1
        while ir_name in self._used_names:
            ir_name = f"{name}${k}"
            k += 1
        self._used_names.add(ir_name)
        self._scopes[-1][name] = ir_name
        return ir_name

    def lookup_local(self, name: str) -> str:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"unknown local {name!r} during lowering")

    def qname(self) -> str:
        return f"{self.class_name}.{self.minfo.name}"

    def finish(self, body: Stmt) -> IRMethod:
        stmts: list[Stmt] = []
        if self.needs_fin:
            stmts.append(self.atomic(ins.Assign(FIN_VAR, ins.BoolAtom(False))))
        stmts.append(body)
        return IRMethod(
            self.class_name,
            self.minfo.name,
            self.params,
            seq(stmts),
            self.minfo.is_static,
            ret_is_void=self.minfo.ret_type == ast.VOID,
            ret_is_ref=_is_ref(self.minfo.ret_type),
            param_ref=self.param_ref,
        )

    def lower(self, body: ast.Block) -> IRMethod:
        ir, _ = self.lower_block_stmts(body.stmts)
        return self.finish(ir)

    # -- statements -----------------------------------------------------------------

    def lower_block_stmts(self, stmts: list[ast.Stmt]) -> tuple[Stmt, set[str]]:
        """Lower a statement list; returns (ir, interrupt flags possibly set).

        When a statement may set an interrupt flag (early return / break /
        continue), the remaining statements are guarded by a choice on the
        negation of those flags.
        """
        self._scopes.append({})
        try:
            return self._lower_seq(stmts)
        finally:
            self._scopes.pop()

    def _lower_seq(self, stmts: list[ast.Stmt]) -> tuple[Stmt, set[str]]:
        out: list[Stmt] = []
        all_flags: set[str] = set()
        for i, stmt in enumerate(stmts):
            ir, flags = self.lower_stmt(stmt)
            out.append(ir)
            all_flags |= flags
            if flags and i < len(stmts) - 1:
                rest, rest_flags = self._lower_seq(stmts[i + 1 :])
                all_flags |= rest_flags
                guard = _or_flags(flags)
                out.append(
                    Choice(
                        [
                            seq([self.atomic(ins.Assume(guard, False)), rest]),
                            self.atomic(ins.Assume(guard, True)),
                        ]
                    )
                )
                return seq(out), all_flags
        return seq(out), all_flags

    def lower_stmt(self, stmt: ast.Stmt) -> tuple[Stmt, set[str]]:
        if isinstance(stmt, ast.Block):
            return self.lower_block_stmts(stmt.stmts)
        if isinstance(stmt, ast.LocalDecl):
            return self._lower_local_decl(stmt), set()
        if isinstance(stmt, ast.AssignStmt):
            return self._lower_assign(stmt), set()
        if isinstance(stmt, ast.ExprStmt):
            pre, _ = self.lower_expr(stmt.expr, want_value=False)
            return seq(pre), set()
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt)
        if isinstance(stmt, ast.Return):
            return self._lower_return(stmt)
        if isinstance(stmt, ast.Throw):
            pre, var = self.lower_to_var(stmt.value)
            pre.append(self.atomic(ins.ThrowCmd(var), stmt.pos))
            # Nothing after a throw executes; no interrupt flag is needed
            # because the ThrowCmd itself blocks all fall-through.
            return seq(pre), set()
        if isinstance(stmt, ast.Assert):
            # assert e  ==  (assume e) [] (assume !e; throw fresh)
            pre, guard = self.lower_guard(stmt.cond)
            temp = self.fresh_temp()
            site = self.builder.fresh_site("Object", self.qname(), "object")
            failing = seq(
                [
                    self.atomic(ins.Assume(guard, False), stmt.pos),
                    self.atomic(ins.New(temp, site), stmt.pos),
                    self.atomic(ins.ThrowCmd(temp), stmt.pos),
                ]
            )
            passing = self.atomic(ins.Assume(guard, True), stmt.pos)
            return seq(pre + [Choice([passing, failing])]), set()
        if isinstance(stmt, ast.Break):
            if not self._loops:
                raise LoweringError("break outside loop", stmt.pos)
            ctx = self._loops[-1]
            ctx.brk_used = True
            ir = self.atomic(ins.Assign(ctx.brk_var, ins.BoolAtom(True)), stmt.pos)
            return ir, {ctx.brk_var}
        if isinstance(stmt, ast.Continue):
            if not self._loops:
                raise LoweringError("continue outside loop", stmt.pos)
            ctx = self._loops[-1]
            ctx.cnt_used = True
            ir = self.atomic(ins.Assign(ctx.cnt_var, ins.BoolAtom(True)), stmt.pos)
            return ir, {ctx.cnt_var}
        raise LoweringError(f"cannot lower {type(stmt).__name__}", stmt.pos)

    def _lower_local_decl(self, stmt: ast.LocalDecl) -> Stmt:
        pre: list[Stmt] = []
        if stmt.init is not None:
            init_pre, atom = self.lower_expr(stmt.init)
            pre.extend(init_pre)
        else:
            atom = _default_atom(stmt.decl_type)
        ir_name = self.declare_local(stmt.name)
        pre.append(self.atomic(ins.Assign(ir_name, atom), stmt.pos))
        return seq(pre)

    def _lower_assign(self, stmt: ast.AssignStmt) -> Stmt:
        lhs = stmt.lhs
        if isinstance(lhs, ast.VarRef):
            ir_name = self.lookup_local(lhs.name)
            pre, atom = self.lower_expr(stmt.rhs)
            pre.append(self.atomic(ins.Assign(ir_name, atom), stmt.pos))
            return seq(pre)
        if isinstance(lhs, ast.FieldAccess):
            if lhs.is_static:
                assert lhs.decl_class is not None
                pre, atom = self.lower_expr(stmt.rhs)
                pre.append(
                    self.atomic(
                        ins.StaticWrite(lhs.decl_class, lhs.name, atom), stmt.pos
                    )
                )
                return seq(pre)
            pre, base_var = self.lower_to_var(lhs.target)
            rhs_pre, atom = self.lower_expr(stmt.rhs)
            pre.extend(rhs_pre)
            pre.append(
                self.atomic(ins.FieldWrite(base_var, lhs.name, atom), stmt.pos)
            )
            return seq(pre)
        if isinstance(lhs, ast.ArrayIndex):
            pre, base_var = self.lower_to_var(lhs.target)
            idx_pre, idx_atom = self.lower_expr(lhs.index)
            pre.extend(idx_pre)
            rhs_pre, atom = self.lower_expr(stmt.rhs)
            pre.extend(rhs_pre)
            pre.append(
                self.atomic(ins.ArrayWrite(base_var, idx_atom, atom), stmt.pos)
            )
            return seq(pre)
        raise LoweringError("invalid assignment target", stmt.pos)

    def _lower_if(self, stmt: ast.If) -> tuple[Stmt, set[str]]:
        pre, guard = self.lower_guard(stmt.cond)
        then_ir, then_flags = self.lower_stmt(stmt.then)
        then_branch = seq([self.atomic(ins.Assume(guard, True), stmt.pos), then_ir])
        if stmt.orelse is not None:
            else_ir, else_flags = self.lower_stmt(stmt.orelse)
        else:
            else_ir, else_flags = seq([]), set()
        else_branch = seq([self.atomic(ins.Assume(guard, False), stmt.pos), else_ir])
        choice = Choice([then_branch, else_branch])
        return seq(pre + [choice]), then_flags | else_flags

    def _lower_while(self, stmt: ast.While) -> tuple[Stmt, set[str]]:
        ctx = _LoopContext(self._loop_counter)
        self._loop_counter += 1
        self._loops.append(ctx)
        pre, guard = self.lower_guard(stmt.cond)
        body_ir, body_flags = self.lower_stmt(stmt.body)
        self._loops.pop()

        # Flags that terminate iteration: break and early return.
        exit_flags = set()
        if ctx.brk_used:
            exit_flags.add(ctx.brk_var)
        if FIN_VAR in body_flags:
            exit_flags.add(FIN_VAR)

        iter_stmts: list[Stmt] = []
        if ctx.cnt_used:
            iter_stmts.append(self.atomic(ins.Assign(ctx.cnt_var, ins.BoolAtom(False))))
        if exit_flags:
            iter_stmts.append(
                self.atomic(ins.Assume(_or_flags(exit_flags), False), stmt.pos)
            )
        iter_stmts.extend(pre)
        iter_stmts.append(self.atomic(ins.Assume(guard, True), stmt.pos))
        iter_stmts.append(body_ir)
        loop = Loop(seq(iter_stmts))

        out: list[Stmt] = []
        if ctx.brk_used:
            out.append(self.atomic(ins.Assign(ctx.brk_var, ins.BoolAtom(False))))
        out.append(loop)
        normal_exit = seq(pre + [self.atomic(ins.Assume(guard, False), stmt.pos)])
        if exit_flags:
            flag_expr = _or_flags(exit_flags)
            out.append(
                Choice(
                    [
                        seq([self.atomic(ins.Assume(flag_expr, False)), normal_exit]),
                        self.atomic(ins.Assume(flag_expr, True)),
                    ]
                )
            )
        else:
            out.append(normal_exit)
        if ctx.brk_used:
            out.append(self.atomic(ins.Assign(ctx.brk_var, ins.BoolAtom(False))))
        # Break/continue are absorbed by this loop; only $fin escapes.
        escaping = body_flags & {FIN_VAR}
        return seq(out), escaping

    def _lower_return(self, stmt: ast.Return) -> tuple[Stmt, set[str]]:
        out: list[Stmt] = []
        if stmt.value is not None:
            pre, atom = self.lower_expr(stmt.value)
            out.extend(pre)
            out.append(self.atomic(ins.Assign(RET_VAR, atom), stmt.pos))
        if self.needs_fin:
            out.append(self.atomic(ins.Assign(FIN_VAR, ins.BoolAtom(True)), stmt.pos))
            return seq(out), {FIN_VAR}
        return seq(out), set()

    # -- guards -------------------------------------------------------------------

    def lower_guard(self, expr: ast.Expr) -> tuple[list[Stmt], ins.PureExpr]:
        """Lower a branch condition, keeping it symbolic where possible."""
        pure = self._try_pure(expr)
        if pure is not None:
            return [], pure
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
            lhs_pre, lhs_pure = self.lower_guard(expr.left)
            rhs_pre, rhs_pure = self.lower_guard(expr.right)
            is_ref = expr.op in ("==", "!=") and (
                _is_ref(expr.left.type) or _is_ref(expr.right.type)
            )
            return lhs_pre + rhs_pre, ins.PBin(
                expr.op, lhs_pure, rhs_pure, ref_operands=is_ref
            )
        if isinstance(expr, ast.Unary) and expr.op == "!":
            pre, inner = self.lower_guard(expr.operand)
            return pre, ins.PNot(inner)
        pre, atom = self.lower_expr(expr)
        return pre, _atom_to_pure(atom, self)

    def _try_pure(self, expr: ast.Expr) -> Optional[ins.PureExpr]:
        if isinstance(expr, ast.VarRef):
            return ins.PVar(self.lookup_local(expr.name))
        if isinstance(expr, ast.ThisRef):
            return ins.PVar("this")
        if isinstance(expr, ast.IntLit):
            return ins.PInt(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ins.PBool(expr.value)
        if isinstance(expr, ast.NullLit):
            return ins.PNull()
        if isinstance(expr, ast.FieldAccess):
            if expr.is_static:
                assert expr.decl_class is not None
                return ins.PStatic(expr.decl_class, expr.name)
            base = self._try_pure(expr.target)
            if base is None:
                return None
            return ins.PField(base, expr.name)
        if isinstance(expr, ast.Binary):
            left = self._try_pure(expr.left)
            right = self._try_pure(expr.right)
            if left is None or right is None:
                return None
            is_ref = expr.op in ("==", "!=") and (
                _is_ref(expr.left.type) or _is_ref(expr.right.type)
            )
            return ins.PBin(expr.op, left, right, ref_operands=is_ref)
        if isinstance(expr, ast.Unary):
            operand = self._try_pure(expr.operand)
            if operand is None:
                return None
            if expr.op == "!":
                return ins.PNot(operand)
            return ins.PBin("-", ins.PInt(0), operand)
        return None

    # -- expressions -----------------------------------------------------------------

    def lower_to_var(self, expr: ast.Expr) -> tuple[list[Stmt], str]:
        pre, atom = self.lower_expr(expr)
        if isinstance(atom, ins.VarAtom):
            return pre, atom.name
        temp = self.fresh_temp()
        pre.append(self.atomic(ins.Assign(temp, atom), expr.pos))
        return pre, temp

    def lower_expr(
        self, expr: ast.Expr, want_value: bool = True
    ) -> tuple[list[Stmt], ins.Atom]:
        if isinstance(expr, ast.IntLit):
            return [], ins.IntAtom(expr.value)
        if isinstance(expr, ast.BoolLit):
            return [], ins.BoolAtom(expr.value)
        if isinstance(expr, ast.NullLit):
            return [], ins.NullAtom()
        if isinstance(expr, ast.StringLit):
            temp = self.fresh_temp()
            site = self.builder.fresh_site("String", self.qname(), "string")
            return [self.atomic(ins.New(temp, site), expr.pos)], ins.VarAtom(temp)
        if isinstance(expr, ast.VarRef):
            return [], ins.VarAtom(self.lookup_local(expr.name))
        if isinstance(expr, ast.ThisRef):
            return [], ins.VarAtom("this")
        if isinstance(expr, ast.FieldAccess):
            temp = self.fresh_temp()
            if expr.is_static:
                assert expr.decl_class is not None
                cmd: ins.Command = ins.StaticRead(temp, expr.decl_class, expr.name)
                return [self.atomic(cmd, expr.pos)], ins.VarAtom(temp)
            pre, base_var = self.lower_to_var(expr.target)
            pre.append(self.atomic(ins.FieldRead(temp, base_var, expr.name), expr.pos))
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.ArrayLength):
            pre, base_var = self.lower_to_var(expr.target)
            temp = self.fresh_temp()
            pre.append(self.atomic(ins.ArrayLen(temp, base_var), expr.pos))
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.ArrayIndex):
            pre, base_var = self.lower_to_var(expr.target)
            idx_pre, idx_atom = self.lower_expr(expr.index)
            pre.extend(idx_pre)
            temp = self.fresh_temp()
            pre.append(self.atomic(ins.ArrayRead(temp, base_var, idx_atom), expr.pos))
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.NondetCall):
            temp = self.fresh_temp()
            return [self.atomic(ins.Nondet(temp), expr.pos)], ins.VarAtom(temp)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value)
        if isinstance(expr, ast.SuperCall):
            raise LoweringError(
                "super(...) must be the first statement of a constructor", expr.pos
            )
        if isinstance(expr, ast.NewObject):
            return self._lower_new_object(expr)
        if isinstance(expr, ast.NewArray):
            pre, size_atom = self.lower_expr(expr.size)
            temp = self.fresh_temp()
            elem = str(expr.elem_type)
            site = self.builder.fresh_site(elem, self.qname(), "array")
            pre.append(self.atomic(ins.NewArray(temp, site, size_atom), expr.pos))
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.Cast):
            pre, src = self.lower_to_var(expr.operand)
            temp = self.fresh_temp()
            assert isinstance(expr.target_type, ast.ClassType)
            pre.append(
                self.atomic(
                    ins.CastCmd(temp, expr.target_type.name, src), expr.pos
                )
            )
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.InstanceOf):
            pre, src = self.lower_to_var(expr.operand)
            temp = self.fresh_temp()
            pre.append(
                self.atomic(ins.InstanceOfCmd(temp, src, expr.class_name), expr.pos)
            )
            return pre, ins.VarAtom(temp)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Unary):
            pre, atom = self.lower_expr(expr.operand)
            temp = self.fresh_temp()
            pre.append(self.atomic(ins.UnOpCmd(temp, expr.op, atom), expr.pos))
            return pre, ins.VarAtom(temp)
        raise LoweringError(f"cannot lower {type(expr).__name__}", expr.pos)

    def _lower_call(
        self, expr: ast.Call, want_value: bool
    ) -> tuple[list[Stmt], ins.Atom]:
        assert expr.decl_class is not None
        pre: list[Stmt] = []
        receiver: Optional[str] = None
        if not expr.is_static:
            assert expr.target is not None
            recv_pre, receiver = self.lower_to_var(expr.target)
            pre.extend(recv_pre)
        args: list[ins.Atom] = []
        for arg in expr.args:
            arg_pre, atom = self.lower_expr(arg)
            pre.extend(arg_pre)
            args.append(atom)
        lhs: Optional[str] = None
        if want_value and expr.type != ast.VOID:
            lhs = self.fresh_temp()
        kind = "static" if expr.is_static else "virtual"
        pre.append(
            self.atomic(
                ins.Invoke(lhs, receiver, expr.name, args, expr.decl_class, kind),
                expr.pos,
            )
        )
        if lhs is None:
            return pre, ins.NullAtom()
        return pre, ins.VarAtom(lhs)

    def _lower_new_object(self, expr: ast.NewObject) -> tuple[list[Stmt], ins.Atom]:
        pre: list[Stmt] = []
        args: list[ins.Atom] = []
        for arg in expr.args:
            arg_pre, atom = self.lower_expr(arg)
            pre.extend(arg_pre)
            args.append(atom)
        temp = self.fresh_temp()
        site = self.builder.fresh_site(expr.class_name, self.qname(), "object")
        pre.append(self.atomic(ins.New(temp, site), expr.pos))
        pre.append(
            self.atomic(
                ins.Invoke(None, temp, INIT, args, expr.class_name, "special"),
                expr.pos,
            )
        )
        return pre, ins.VarAtom(temp)

    def _lower_binary(self, expr: ast.Binary) -> tuple[list[Stmt], ins.Atom]:
        pre, left = self.lower_expr(expr.left)
        rhs_pre, right = self.lower_expr(expr.right)
        pre.extend(rhs_pre)
        temp = self.fresh_temp()
        cmd = ins.BinOpCmd(temp, expr.op, left, right)
        if expr.op in ("==", "!=") and _is_ref(expr.left.type):
            cmd.ref_operands = True
        pre.append(self.atomic(cmd, expr.pos))
        return pre, ins.VarAtom(temp)


def _or_flags(flags: set[str]) -> ins.PureExpr:
    exprs: list[ins.PureExpr] = [ins.PVar(name) for name in sorted(flags)]
    result = exprs[0]
    for nxt in exprs[1:]:
        result = ins.PBin("||", result, nxt)
    return result


def _atom_to_pure(atom: ins.Atom, lowerer: "_MethodLowerer") -> ins.PureExpr:
    if isinstance(atom, ins.VarAtom):
        return ins.PVar(atom.name)
    if isinstance(atom, ins.IntAtom):
        return ins.PInt(atom.value)
    if isinstance(atom, ins.BoolAtom):
        return ins.PBool(atom.value)
    return ins.PNull()


def _default_atom(typ: ast.Type) -> ins.Atom:
    if typ == ast.INT:
        return ins.IntAtom(0)
    if typ == ast.BOOLEAN:
        return ins.BoolAtom(False)
    return ins.NullAtom()
