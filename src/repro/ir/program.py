"""Whole-program IR container.

An :class:`IRProgram` owns one :class:`IRMethod` per source method (plus
synthesized constructors, class initializers, and the program entry), the
class table from the frontend, and label maps from program points back to
commands and methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lang.types import ClassTable
from .instructions import AllocSite, Command, Invoke, New, NewArray
from .stmts import AtomicStmt, Choice, Loop, Seq, Stmt, walk_commands, walk_statements

RET_VAR = "$ret"
FIN_VAR = "$fin"
ENTRY_CLASS = "$Program"
ENTRY_METHOD = f"{ENTRY_CLASS}.$entry"
CLINIT = "<clinit>"
INIT = "<init>"


@dataclass
class IRMethod:
    class_name: str
    name: str
    params: list[str]  # includes "this" first for instance methods
    body: Stmt
    is_static: bool
    ret_is_void: bool = True
    ret_is_ref: bool = False
    param_ref: list[bool] = field(default_factory=list)  # per param: reference?

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def __str__(self) -> str:
        return self.qualified_name


class IRProgram:
    """A lowered program: methods, label maps, and allocation sites."""

    def __init__(self, class_table: ClassTable) -> None:
        self.class_table = class_table
        self.methods: dict[str, IRMethod] = {}
        self.entry: Optional[str] = None
        self.alloc_sites: list[AllocSite] = []
        # Label maps, filled by assign_labels().
        self.commands: dict[int, Command] = {}
        self.statements: dict[int, Stmt] = {}
        self.command_method: dict[int, str] = {}
        self._next_label = 0

    def add_method(self, method: IRMethod) -> None:
        if method.qualified_name in self.methods:
            raise ValueError(f"duplicate method {method.qualified_name}")
        self.methods[method.qualified_name] = method

    def method(self, qualified_name: str) -> IRMethod:
        return self.methods[qualified_name]

    def entry_method(self) -> IRMethod:
        if self.entry is None:
            raise ValueError("program has no entry point")
        return self.methods[self.entry]

    def assign_labels(self) -> None:
        """Assign unique labels to every statement and command."""
        for method in self.methods.values():
            self._label_method(method)

    def _label_method(self, method: IRMethod) -> None:
        for stmt in walk_statements(method.body):
            stmt.label = self._next_label
            self._next_label += 1
            self.statements[stmt.label] = stmt
            if isinstance(stmt, AtomicStmt):
                cmd = stmt.cmd
                cmd.label = stmt.label
                self.commands[stmt.label] = cmd
                self.command_method[stmt.label] = method.qualified_name

    def replace_method(self, method: IRMethod) -> None:
        """Graft a new body for an existing method: retire the old body's
        labels from the label maps and assign fresh ones to the new body.
        Labels are never reused, so every other method's labels — and any
        retained analysis state keyed on them — stay valid by construction."""
        old = self.methods.get(method.qualified_name)
        if old is None:
            raise KeyError(method.qualified_name)
        for stmt in walk_statements(old.body):
            self.statements.pop(stmt.label, None)
            self.commands.pop(stmt.label, None)
            self.command_method.pop(stmt.label, None)
        self.methods[method.qualified_name] = method
        self._label_method(method)

    def method_of_label(self, label: int) -> IRMethod:
        return self.methods[self.command_method[label]]

    def all_commands(self) -> Iterator[tuple[str, Command]]:
        for qname, method in self.methods.items():
            for cmd in walk_commands(method.body):
                yield qname, cmd

    def commands_of(self, qname: str) -> Iterator[Command]:
        yield from walk_commands(self.methods[qname].body)

    # -- queries used by analyses ---------------------------------------------

    def resolve_virtual(self, class_name: str, method_name: str) -> Optional[str]:
        """Resolve a virtual call on an exact runtime class to a qualified
        method name, walking up the hierarchy; None if no implementation."""
        for info in self.class_table.ancestors(class_name):
            qname = f"{info.name}.{method_name}"
            if qname in self.methods:
                return qname
        return None

    def new_commands(self) -> Iterator[tuple[str, Command]]:
        for qname, cmd in self.all_commands():
            if isinstance(cmd, (New, NewArray)):
                yield qname, cmd

    def invoke_commands(self) -> Iterator[tuple[str, Invoke]]:
        for qname, cmd in self.all_commands():
            if isinstance(cmd, Invoke):
                yield qname, cmd

    def stats(self) -> dict[str, int]:
        n_cmds = sum(1 for _ in self.all_commands())
        n_loops = sum(
            1
            for m in self.methods.values()
            for s in walk_statements(m.body)
            if isinstance(s, Loop)
        )
        n_choices = sum(
            1
            for m in self.methods.values()
            for s in walk_statements(m.body)
            if isinstance(s, Choice)
        )
        return {
            "methods": len(self.methods),
            "commands": n_cmds,
            "loops": n_loops,
            "choices": n_choices,
            "alloc_sites": len(self.alloc_sites),
        }
