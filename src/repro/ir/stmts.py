"""Structured statements of the IR.

The statement language is exactly the paper's: atomic commands, sequencing,
nondeterministic choice, and ``loop`` (execute the body zero or more times).
``if`` and ``while`` are desugared by the builder:

    if (e) s1 else s2   =   (assume e; s1) [] (assume !e; s2)
    while (e) s         =   loop (assume e; s); assume !e

Compound statements carry a unique ``label`` too, used by the symbolic
executor as a key for query histories at loop heads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .instructions import Command


@dataclass
class Stmt:
    label: int = field(default=-1, init=False, compare=False)


@dataclass
class AtomicStmt(Stmt):
    cmd: Command

    def __str__(self) -> str:
        return str(self.cmd)


@dataclass
class Seq(Stmt):
    stmts: list[Stmt]


@dataclass
class Choice(Stmt):
    branches: list[Stmt]


@dataclass
class Loop(Stmt):
    body: Stmt


SKIP = Seq([])


def seq(stmts: list[Stmt]) -> Stmt:
    """Smart sequencing: flattens nested ``Seq`` and drops empties."""
    flat: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Seq):
            flat.extend(stmt.stmts)
        else:
            flat.append(stmt)
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)


def walk_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and all statements nested inside it, preorder."""
    yield stmt
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            yield from walk_statements(child)
    elif isinstance(stmt, Choice):
        for branch in stmt.branches:
            yield from walk_statements(branch)
    elif isinstance(stmt, Loop):
        yield from walk_statements(stmt.body)


def walk_commands(stmt: Stmt) -> Iterator[Command]:
    """Yield every atomic command nested in ``stmt``, preorder."""
    for child in walk_statements(stmt):
        if isinstance(child, AtomicStmt):
            yield child.cmd
