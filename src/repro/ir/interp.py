"""Bounded exhaustive concrete interpreter for the structured IR.

The interpreter enumerates concrete executions of a program, resolving
nondeterminism (``choice``, ``loop``, ``nondet``) by forking, up to
configurable bounds on loop iterations, call depth, steps, and total paths.
Each completed (or abnormally terminated) run records the heap points-to
edges *produced* at each program point — exactly the events the
witness-refutation analysis reasons about — which gives us an executable
ground truth for refutation soundness (Theorem 1 of the paper): an edge
produced at label L by any concrete run must never be refuted at L.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from . import instructions as ins
from .program import INIT, RET_VAR, IRMethod, IRProgram
from .stmts import AtomicStmt, Choice, Loop, Seq, Stmt


class _AssumeFailed(Exception):
    """Internal: the current path is infeasible."""


class _Abort(Exception):
    """Internal: abnormal termination (null deref, division by zero, ...)."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


@dataclass
class ConcreteObject:
    oid: int
    site: ins.AllocSite
    fields: dict = field(default_factory=dict)
    elems: dict = field(default_factory=dict)
    length: int = 0

    def __repr__(self) -> str:
        return f"<{self.site}#{self.oid}>"


Value = Union[int, bool, None, ConcreteObject]


@dataclass(frozen=True)
class ProducedEdge:
    """A heap points-to edge produced at a program point.

    ``src`` is an :class:`AllocSite` for object fields or a
    ``("static", class, field)`` tuple for static fields; ``field_name`` is
    the field (``"@elems"`` for array contents); ``dst`` is the allocation
    site of the stored object.
    """

    label: int
    src: object
    field_name: str
    dst: ins.AllocSite


@dataclass
class Run:
    """One enumerated execution."""

    status: str  # "completed" | "aborted" | "truncated"
    reason: str
    produced: list[ProducedEdge]
    statics: dict  # (class, field) -> Value, final snapshot


class _Frame:
    __slots__ = ("method", "locals")

    def __init__(self, method: IRMethod, locals_: dict) -> None:
        self.method = method
        self.locals = locals_


class _State:
    def __init__(self) -> None:
        self.statics: dict = {}
        self.frames: list[_Frame] = []
        self.produced: list[ProducedEdge] = []
        self.steps = 0
        self.next_oid = 0
        self.aborted: Optional[str] = None  # abnormal-termination reason

    def fork(self) -> "_State":
        return copy.deepcopy(self)

    @property
    def frame(self) -> _Frame:
        return self.frames[-1]


@dataclass
class Limits:
    max_loop_iterations: int = 6
    max_call_depth: int = 24
    max_steps: int = 20_000
    max_paths: int = 512


class Interpreter:
    """Enumerates bounded concrete executions of an :class:`IRProgram`."""

    def __init__(self, program: IRProgram, limits: Optional[Limits] = None) -> None:
        self.program = program
        self.limits = limits or Limits()
        self._paths_emitted = 0

    # -- public API ---------------------------------------------------------------

    def explore(self, entry: Optional[str] = None) -> list[Run]:
        """Run the program from ``entry`` (default: the synthesized entry),
        enumerating nondeterminism; returns up to ``limits.max_paths`` runs."""
        entry_name = entry or self.program.entry
        if entry_name is None:
            raise ValueError("program has no entry point")
        method = self.program.methods[entry_name]
        if method.params:
            raise ValueError(f"entry {entry_name} must take no parameters")
        self._paths_emitted = 0
        runs: list[Run] = []
        state = _State()
        state.frames.append(_Frame(method, {}))
        for outcome in self._run_to_completion(state, method):
            runs.append(outcome)
            if len(runs) >= self.limits.max_paths:
                break
        return runs

    def produced_edges(self, entry: Optional[str] = None) -> set[ProducedEdge]:
        """The union of produced edges over all enumerated runs."""
        edges: set[ProducedEdge] = set()
        for run in self.explore(entry):
            edges.update(run.produced)
        return edges

    # -- execution ------------------------------------------------------------------

    def _run_to_completion(self, state: _State, method: IRMethod) -> Iterator[Run]:
        for final in self._exec(state, method.body):
            if final.aborted is not None:
                yield Run("aborted", final.aborted, list(final.produced), dict(final.statics))
            else:
                yield Run("completed", "", list(final.produced), dict(final.statics))

    def _exec(self, state: _State, stmt: Stmt) -> Iterator[_State]:
        """Yield all states reachable by executing ``stmt`` from ``state``.

        Yielded states are independently mutable. Paths that fail an
        ``assume`` are silently dropped; aborted states (null deref,
        division by zero, limits) short-circuit all remaining execution.
        """
        if state.aborted is not None:
            yield state
            return
        if isinstance(stmt, AtomicStmt):
            yield from self._exec_atomic(state, stmt.cmd)
            return
        if isinstance(stmt, Seq):
            yield from self._exec_seq(state, stmt.stmts, 0)
            return
        if isinstance(stmt, Choice):
            for i, branch in enumerate(stmt.branches):
                child = state.fork() if i < len(stmt.branches) - 1 else state
                yield from self._exec(child, branch)
            return
        if isinstance(stmt, Loop):
            current = [state]
            for _ in range(self.limits.max_loop_iterations + 1):
                if not current:
                    return
                next_states: list[_State] = []
                for s in current:
                    if s.aborted is not None:
                        yield s
                        continue
                    yield s.fork()  # exit the loop after this many iterations
                    next_states.extend(self._exec(s, stmt.body))
                current = next_states
            return
        raise TypeError(f"unknown statement {type(stmt).__name__}")

    def _exec_seq(self, state: _State, stmts: list[Stmt], i: int) -> Iterator[_State]:
        if i >= len(stmts):
            yield state
            return
        for mid in self._exec(state, stmts[i]):
            yield from self._exec_seq(mid, stmts, i + 1)

    # -- atomic commands ---------------------------------------------------------------

    def _exec_atomic(self, state: _State, cmd: ins.Command) -> Iterator[_State]:
        state.steps += 1
        if state.steps > self.limits.max_steps:
            state.aborted = "step limit exceeded"
            yield state
            return
        try:
            yield from self._dispatch(state, cmd)
        except _AssumeFailed:
            return
        except _Abort as abort:
            # Abnormal termination: the prefix is a real execution.
            state.aborted = abort.reason
            yield state
            return

    def _dispatch(self, state: _State, cmd: ins.Command) -> Iterator[_State]:
        locals_ = state.frame.locals
        if isinstance(cmd, ins.Assign):
            locals_[cmd.lhs] = self._atom(state, cmd.rhs)
            yield state
        elif isinstance(cmd, ins.BinOpCmd):
            locals_[cmd.lhs] = self._binop(
                cmd.op, self._atom(state, cmd.left), self._atom(state, cmd.right)
            )
            yield state
        elif isinstance(cmd, ins.UnOpCmd):
            value = self._atom(state, cmd.operand)
            locals_[cmd.lhs] = (not value) if cmd.op == "!" else -value
            yield state
        elif isinstance(cmd, ins.New):
            obj = ConcreteObject(state.next_oid, cmd.site)
            state.next_oid += 1
            locals_[cmd.lhs] = obj
            yield state
        elif isinstance(cmd, ins.NewArray):
            size = self._atom(state, cmd.size)
            if not isinstance(size, int) or size < 0:
                raise _Abort("negative array size")
            obj = ConcreteObject(state.next_oid, cmd.site, length=size)
            state.next_oid += 1
            locals_[cmd.lhs] = obj
            yield state
        elif isinstance(cmd, ins.FieldRead):
            base = self._deref(locals_.get(cmd.base))
            if cmd.field_name in base.fields:
                locals_[cmd.lhs] = base.fields[cmd.field_name]
            else:
                locals_[cmd.lhs] = self._default_field_value(
                    base.site.class_name, cmd.field_name
                )
            yield state
        elif isinstance(cmd, ins.FieldWrite):
            base = self._deref(locals_.get(cmd.base))
            value = self._atom(state, cmd.rhs)
            base.fields[cmd.field_name] = value
            if isinstance(value, ConcreteObject):
                state.produced.append(
                    ProducedEdge(cmd.label, base.site, cmd.field_name, value.site)
                )
            yield state
        elif isinstance(cmd, ins.StaticRead):
            key = (cmd.class_name, cmd.field_name)
            if key in state.statics:
                locals_[cmd.lhs] = state.statics[key]
            else:
                locals_[cmd.lhs] = self._default_field_value(
                    cmd.class_name, cmd.field_name
                )
            yield state
        elif isinstance(cmd, ins.StaticWrite):
            value = self._atom(state, cmd.rhs)
            state.statics[(cmd.class_name, cmd.field_name)] = value
            if isinstance(value, ConcreteObject):
                state.produced.append(
                    ProducedEdge(
                        cmd.label,
                        ("static", cmd.class_name, cmd.field_name),
                        cmd.field_name,
                        value.site,
                    )
                )
            yield state
        elif isinstance(cmd, ins.ArrayRead):
            base = self._deref(locals_.get(cmd.base))
            index = self._atom(state, cmd.index)
            if not (0 <= index < base.length):
                raise _Abort("array index out of bounds")
            locals_[cmd.lhs] = base.elems.get(index)
            yield state
        elif isinstance(cmd, ins.ArrayWrite):
            base = self._deref(locals_.get(cmd.base))
            index = self._atom(state, cmd.index)
            if not (0 <= index < base.length):
                raise _Abort("array index out of bounds")
            value = self._atom(state, cmd.rhs)
            base.elems[index] = value
            if isinstance(value, ConcreteObject):
                state.produced.append(
                    ProducedEdge(cmd.label, base.site, "@elems", value.site)
                )
            yield state
        elif isinstance(cmd, ins.ArrayLen):
            base = self._deref(locals_.get(cmd.base))
            locals_[cmd.lhs] = base.length
            yield state
        elif isinstance(cmd, ins.CastCmd):
            value = locals_.get(cmd.src)
            if value is not None:
                if not isinstance(value, ConcreteObject):
                    raise _Abort("cast of a primitive value")
                table = self.program.class_table
                if not table.site_is_instance(value.site, cmd.class_name):
                    raise _Abort("ClassCastException")
            locals_[cmd.lhs] = value
            yield state
        elif isinstance(cmd, ins.InstanceOfCmd):
            value = locals_.get(cmd.src)
            if isinstance(value, ConcreteObject):
                table = self.program.class_table
                locals_[cmd.lhs] = table.site_is_instance(value.site, cmd.class_name)
            else:
                locals_[cmd.lhs] = False
            yield state
        elif isinstance(cmd, ins.ThrowCmd):
            raise _Abort("uncaught exception")
        elif isinstance(cmd, ins.Invoke):
            yield from self._exec_invoke(state, cmd)
        elif isinstance(cmd, ins.Assume):
            value = self._pure(state, cmd.expr)
            if bool(value) != cmd.polarity:
                raise _AssumeFailed()
            yield state
        elif isinstance(cmd, ins.Nondet):
            other = state.fork()
            state.frame.locals[cmd.lhs] = True
            other.frame.locals[cmd.lhs] = False
            yield state
            yield other
        else:
            raise TypeError(f"unknown command {type(cmd).__name__}")

    def _exec_invoke(self, state: _State, cmd: ins.Invoke) -> Iterator[_State]:
        if len(state.frames) >= self.limits.max_call_depth:
            raise _Abort("call depth exceeded")
        locals_ = state.frame.locals
        args = [self._atom(state, a) for a in cmd.args]
        if cmd.kind == "static":
            qname = f"{cmd.decl_class}.{cmd.method_name}"
            receiver: Value = None
        else:
            assert cmd.receiver is not None
            recv = self._deref(locals_.get(cmd.receiver))
            receiver = recv
            if cmd.kind == "special":
                qname_opt = self.program.resolve_virtual(cmd.decl_class, cmd.method_name)
            else:
                qname_opt = self.program.resolve_virtual(
                    recv.site.class_name, cmd.method_name
                )
            if qname_opt is None:
                raise _Abort(f"unresolved method {cmd.decl_class}.{cmd.method_name}")
            qname = qname_opt
        if qname not in self.program.methods:
            raise _Abort(f"missing method body {qname}")
        callee = self.program.methods[qname]
        callee_locals: dict = {}
        values = ([receiver] + args) if not callee.is_static else args
        for name, value in zip(callee.params, values):
            callee_locals[name] = value
        state.frames.append(_Frame(callee, callee_locals))
        for result in self._exec(state, callee.body):
            if result.aborted is not None:
                yield result
                continue
            frame = result.frames.pop()
            if cmd.lhs is not None:
                result.frame.locals[cmd.lhs] = frame.locals.get(RET_VAR)
            yield result

    # -- evaluation -----------------------------------------------------------------------

    def _atom(self, state: _State, atom: ins.Atom) -> Value:
        if isinstance(atom, ins.VarAtom):
            return state.frame.locals.get(atom.name)
        if isinstance(atom, ins.IntAtom):
            return atom.value
        if isinstance(atom, ins.BoolAtom):
            return atom.value
        return None

    def _deref(self, value: Value) -> ConcreteObject:
        if not isinstance(value, ConcreteObject):
            raise _Abort("null dereference")
        return value

    def _default_field_value(self, class_name: str, field_name: str) -> Value:
        """Java default values: 0 / false / null by the declared type."""
        from ..lang import ast

        field = self.program.class_table.lookup_field(class_name, field_name)
        if field is None:
            return None
        if field.type == ast.INT:
            return 0
        if field.type == ast.BOOLEAN:
            return False
        return None

    def _binop(self, op: str, left: Value, right: Value) -> Value:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise _Abort("division by zero")
            return int(left / right)  # Java truncates toward zero
        if op == "%":
            if right == 0:
                raise _Abort("division by zero")
            return left - int(left / right) * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "==":
            return left is right if _is_ref_value(left) or _is_ref_value(right) else left == right
        if op == "!=":
            return not self._binop("==", left, right)
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        raise TypeError(f"unknown operator {op!r}")

    def _pure(self, state: _State, expr: ins.PureExpr) -> Value:
        if isinstance(expr, ins.PVar):
            return state.frame.locals.get(expr.name)
        if isinstance(expr, ins.PInt):
            return expr.value
        if isinstance(expr, ins.PBool):
            return expr.value
        if isinstance(expr, ins.PNull):
            return None
        if isinstance(expr, ins.PField):
            base = self._deref(self._pure(state, expr.base))
            if expr.field in base.fields:
                return base.fields[expr.field]
            return self._default_field_value(base.site.class_name, expr.field)
        if isinstance(expr, ins.PStatic):
            key = (expr.class_name, expr.field)
            if key in state.statics:
                return state.statics[key]
            return self._default_field_value(expr.class_name, expr.field)
        if isinstance(expr, ins.PBin):
            return self._binop(
                expr.op, self._pure(state, expr.left), self._pure(state, expr.right)
            )
        if isinstance(expr, ins.PNot):
            return not self._pure(state, expr.operand)
        raise TypeError(f"unknown pure expression {type(expr).__name__}")


def _is_ref_value(value: Value) -> bool:
    return value is None or isinstance(value, ConcreteObject)


def heap_reaches(statics: dict, class_table, target_classes: set[str]) -> list[tuple]:
    """Check which static fields reach an instance of one of
    ``target_classes`` in a final concrete heap snapshot; returns a list of
    ``((class, field), site)`` witnesses. Used by end-to-end leak tests."""
    hits = []
    for key, root in statics.items():
        if not isinstance(root, ConcreteObject):
            continue
        seen: set[int] = set()
        work = [root]
        while work:
            obj = work.pop()
            if obj.oid in seen:
                continue
            seen.add(obj.oid)
            cls = obj.site.class_name
            if not obj.site.is_array and cls in class_table.classes:
                if any(
                    class_table.is_subclass(cls, target) for target in target_classes
                ):
                    hits.append((key, obj.site))
            for value in itertools.chain(obj.fields.values(), obj.elems.values()):
                if isinstance(value, ConcreteObject):
                    work.append(value)
    return hits
