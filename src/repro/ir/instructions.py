"""Atomic commands and pure expressions of the structured IR.

The IR mirrors the formal language of the paper (Section 3):

    commands c ::= x := y | x := y.f | x.f := y | x := new_a t() | assume e
    statements s ::= c | skip | s1 ; s2 | s1 [] s2 | loop s

extended with the pieces needed for real programs: statics, arrays, integer
and boolean computation, calls, and a ``nondet`` command. ``assume`` guards
carry an *unlowered* pure expression tree, which lets the symbolic executor
apply the guard-relevance optimization of Section 3.2 (add path constraints
only when a branch actually changed the query).

Every atomic command carries a globally unique integer ``label`` (a program
point) assigned by the IR builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..lang.errors import SourcePosition

# ---------------------------------------------------------------------------
# Atoms: the operands of atomic commands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarAtom:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntAtom:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolAtom:
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class NullAtom:
    def __str__(self) -> str:
        return "null"


Atom = Union[VarAtom, IntAtom, BoolAtom, NullAtom]


# ---------------------------------------------------------------------------
# Allocation sites
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllocSite:
    """A static allocation site; the unit of heap abstraction.

    ``kind`` is ``"object"``, ``"array"``, or ``"string"`` (string literals
    are allocations, which is what lets the WIT-NEW rule refute the
    ``objs.push("hello")`` call in the paper's Figure 1).
    """

    site_id: int
    class_name: str  # element type for arrays; "String" for string literals
    method: str  # qualified name of the allocating method
    kind: str = "object"
    hint: str = ""  # a human-readable name, e.g. "vec1"

    def __str__(self) -> str:
        if self.hint:
            return self.hint
        return f"{self.class_name.lower()}{self.site_id}"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"


# ---------------------------------------------------------------------------
# Pure guard expressions (for ``assume``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PVar:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PInt:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class PBool:
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class PNull:
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class PField:
    """An instance-field read inside a guard, e.g. ``this.sz``."""

    base: "PureExpr"
    field: str

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


@dataclass(frozen=True)
class PStatic:
    class_name: str
    field: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field}"


@dataclass(frozen=True)
class PBin:
    op: str  # arithmetic, comparison, equality, or boolean connective
    left: "PureExpr"
    right: "PureExpr"
    ref_operands: bool = False  # True for ==/!= over references

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class PNot:
    operand: "PureExpr"

    def __str__(self) -> str:
        return f"!{self.operand}"


PureExpr = Union[PVar, PInt, PBool, PNull, PField, PStatic, PBin, PNot]


def pure_reads_heap(expr: PureExpr) -> bool:
    """True if the guard reads any field (instance or static)."""
    if isinstance(expr, (PField, PStatic)):
        return True
    if isinstance(expr, PBin):
        return pure_reads_heap(expr.left) or pure_reads_heap(expr.right)
    if isinstance(expr, PNot):
        return pure_reads_heap(expr.operand)
    return False


# ---------------------------------------------------------------------------
# Atomic commands
# ---------------------------------------------------------------------------


@dataclass
class Command:
    """Base class of atomic commands. ``label`` is the program point."""

    label: int = field(default=-1, init=False, compare=False)
    pos: SourcePosition = field(
        default_factory=lambda: SourcePosition(0, 0), init=False, compare=False
    )


@dataclass
class Assign(Command):
    lhs: str
    rhs: Atom

    def __str__(self) -> str:
        return f"{self.lhs} := {self.rhs}"


@dataclass
class BinOpCmd(Command):
    lhs: str
    op: str
    left: Atom
    right: Atom
    ref_operands: bool = False  # True for ==/!= comparing references

    def __str__(self) -> str:
        return f"{self.lhs} := {self.left} {self.op} {self.right}"


@dataclass
class UnOpCmd(Command):
    lhs: str
    op: str  # "!" or "-"
    operand: Atom

    def __str__(self) -> str:
        return f"{self.lhs} := {self.op}{self.operand}"


@dataclass
class New(Command):
    lhs: str
    site: AllocSite

    def __str__(self) -> str:
        return f"{self.lhs} := new_{self.site} {self.site.class_name}"


@dataclass
class NewArray(Command):
    lhs: str
    site: AllocSite
    size: Atom

    def __str__(self) -> str:
        return f"{self.lhs} := new_{self.site} {self.site.class_name}[{self.size}]"


@dataclass
class FieldRead(Command):
    lhs: str
    base: str
    field_name: str

    def __str__(self) -> str:
        return f"{self.lhs} := {self.base}.{self.field_name}"


@dataclass
class FieldWrite(Command):
    base: str
    field_name: str
    rhs: Atom

    def __str__(self) -> str:
        return f"{self.base}.{self.field_name} := {self.rhs}"


@dataclass
class StaticRead(Command):
    lhs: str
    class_name: str
    field_name: str

    def __str__(self) -> str:
        return f"{self.lhs} := {self.class_name}.{self.field_name}"


@dataclass
class StaticWrite(Command):
    class_name: str
    field_name: str
    rhs: Atom

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field_name} := {self.rhs}"


@dataclass
class ArrayRead(Command):
    lhs: str
    base: str
    index: Atom

    def __str__(self) -> str:
        return f"{self.lhs} := {self.base}[{self.index}]"


@dataclass
class ArrayWrite(Command):
    base: str
    index: Atom
    rhs: Atom

    def __str__(self) -> str:
        return f"{self.base}[{self.index}] := {self.rhs}"


@dataclass
class ArrayLen(Command):
    lhs: str
    base: str

    def __str__(self) -> str:
        return f"{self.lhs} := {self.base}.length"


@dataclass
class Invoke(Command):
    """A method call.

    ``kind`` is ``"virtual"`` (dispatch on the receiver's dynamic type),
    ``"static"`` (direct, ``receiver`` is None), or ``"special"`` (direct
    with a receiver: constructor and ``super(...)`` calls).
    """

    lhs: Optional[str]
    receiver: Optional[str]
    method_name: str
    args: list[Atom]
    decl_class: str
    kind: str = "virtual"

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        target = self.receiver if self.receiver else self.decl_class
        call = f"{target}.{self.method_name}({args})"
        if self.lhs is not None:
            return f"{self.lhs} := {call}"
        return call


@dataclass
class CastCmd(Command):
    """``lhs := (T) src`` — succeeds for null and instances of (subclasses
    of) T; otherwise the program terminates (uncaught ClassCastException)."""

    lhs: str
    class_name: str
    src: str

    def __str__(self) -> str:
        return f"{self.lhs} := ({self.class_name}) {self.src}"


@dataclass
class InstanceOfCmd(Command):
    """``lhs := src instanceof T`` (false for null)."""

    lhs: str
    src: str
    class_name: str

    def __str__(self) -> str:
        return f"{self.lhs} := {self.src} instanceof {self.class_name}"


@dataclass
class ThrowCmd(Command):
    """``throw src`` — terminates execution (exceptions are never caught,
    matching the paper's model); no program point after it is reachable."""

    src: str

    def __str__(self) -> str:
        return f"throw {self.src}"


@dataclass
class Assume(Command):
    expr: PureExpr
    polarity: bool = True

    def __str__(self) -> str:
        if self.polarity:
            return f"assume {self.expr}"
        return f"assume !({self.expr})"


@dataclass
class Nondet(Command):
    """``lhs`` receives a nondeterministic boolean."""

    lhs: str

    def __str__(self) -> str:
        return f"{self.lhs} := nondet()"
