"""Command-line interface: ``thresher``.

Subcommands::

    thresher check APP.mj [--annotated] [--budget N]   leak-check an app
    thresher graph APP.mj [--no-library]               dump the points-to graph
    thresher bench [--table1 | --table2] [--app NAME]  run the evaluation
    thresher witness APP.mj CLASS.FIELD                witness/refute one field
    thresher casts APP.mj                              check every downcast
    thresher explain --report R.json [--journal J.jsonl]
                                                       render a refutation
                                                       certificate or witness
                                                       narrative for one edge
    thresher serve APP.mj [--stdio | --port N]         long-lived analysis
                                                       daemon with edit-level
                                                       incremental re-analysis
                                                       (see docs/serve.md)

``APP.mj`` is a mini-Java source file (the app only; the Android library
and the lifecycle harness are added automatically unless ``--no-library``).

The refutation subcommands (``check``, ``witness``, ``casts``, ``bench``)
share the parallel-driver flags:

``--jobs N``
    Refute independent edges on N workers (default 1: the deterministic
    serial mode that reproduces the paper's tables bit-identically).
``--deadline S``
    Per-edge wall-clock deadline in seconds; an edge that exceeds it is
    reported TIMEOUT (not refuted), like the paper's per-edge timeout.
``--json-report PATH``
    Write the structured per-edge run report (JSON) to PATH.
``--progress``
    Stream per-edge progress lines to stderr as jobs finish.
``--no-memo`` / ``--no-subsumption`` / ``--no-partition``
    Ablation switches for the :mod:`repro.perf` caches: disable solver
    verdict memoization, the refuted-state cache plus worklist
    subsumption, or relevance-partitioned incremental solving
    (restoring the monolithic decision-procedure path), respectively
    (see ``docs/performance.md``).
``--backend {thread,process}``
    Worker pool flavor for ``--jobs N > 1`` (default thread). The process
    backend ships per-worker metrics/span/journal payloads back to the
    parent and merges them.
``--journal FILE``
    Record a per-query search journal (every state spawned/killed/
    witnessed, with typed kill reasons) and write it as JSONL; feed it to
    ``thresher explain`` for refutation certificates.

Every subcommand additionally accepts the observability flags:

``--trace FILE``
    Record hierarchical spans and write a Chrome trace-event JSON file
    (open it in ``chrome://tracing`` or https://ui.perfetto.dev).
``--metrics FILE``
    Write the process-wide metrics registry (counters, gauges,
    p50/p95 histograms) as JSON when the command finishes.
``--metrics-stream FILE`` / ``--metrics-interval S``
    Append a metrics-registry snapshot to FILE as JSONL every S seconds
    (default 5.0) while the command runs — the batch-mode equivalent of
    scraping the daemon's ``GET /metrics``.

``thresher top`` renders a live terminal dashboard (in-flight searches,
rung occupancy, worker utilization, cache hit-rates) against a running
``thresher serve --port N`` daemon. ``thresher explain --diff A.json
B.json`` attributes wall/verdict/tier deltas between two run reports,
and ``thresher explain --slow`` lists the slow-query flight recorder's
captures (see docs/observability.md).

See ``docs/cli.md`` for the full reference with examples and
``docs/observability.md`` for the span/metric catalogue.
"""

from __future__ import annotations

import argparse
import sys


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON file (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the metrics registry (counters/gauges/histograms) as JSON",
    )
    parser.add_argument(
        "--metrics-stream",
        default=None,
        metavar="FILE",
        help="append periodic metrics-registry snapshots to FILE as JSONL",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds between --metrics-stream snapshots (default 5)",
    )


def _add_driver_flags(parser: argparse.ArgumentParser) -> None:
    _add_obs_flags(parser)
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker count for edge refutation (default 1: deterministic serial)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-edge wall-clock deadline in seconds (exceeded => TIMEOUT)",
    )
    parser.add_argument(
        "--json-report",
        default=None,
        metavar="PATH",
        help="write the structured per-edge run report (JSON) to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-edge progress to stderr",
    )
    parser.add_argument(
        "--no-memo",
        action="store_true",
        help="disable solver verdict memoization (ablation)",
    )
    parser.add_argument(
        "--no-subsumption",
        action="store_true",
        help="disable the refuted-state cache and worklist subsumption (ablation)",
    )
    parser.add_argument(
        "--no-partition",
        action="store_true",
        help=(
            "disable relevance-partitioned incremental solving and use the"
            " monolithic decision procedure (ablation)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default=None,
        help="worker pool flavor for --jobs N (default: thread)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="write the per-query search journal (JSONL) for 'thresher explain'",
    )
    parser.add_argument(
        "--schedule",
        choices=["lifo", "priority"],
        default=None,
        help=(
            "search scheduling policy: 'lifo' (the paper's DFS, default) or"
            " 'priority' (cost-model cheapest-first job dispatch and"
            " best-first worklist)"
        ),
    )
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help=(
            "cheap-first portfolio: run every job at a small budget rung"
            " first, escalating only the survivors (same final verdicts)"
        ),
    )
    parser.add_argument(
        "--steal",
        action="store_true",
        help=(
            "path-level work stealing (--jobs N, thread backend): drained"
            " workers steal unexplored subtrees from in-flight searches"
        ),
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "flight-recorder capture threshold in milliseconds (default"
            " 2000; 0 disables capture): searches slower than this"
            " auto-persist their journal/trace for 'thresher explain"
            " --slow'"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persistent cross-run verdict store: read/write solver"
            " verdicts and refuted states in DIR/verdicts.sqlite (env"
            " REPRO_CACHE_DIR; default: no persistence)"
        ),
    )


def _search_config(args, **overrides):
    """Build a SearchConfig from the shared perf flags plus overrides."""
    from .symbolic import SearchConfig

    if getattr(args, "schedule", None):
        overrides.setdefault("schedule", args.schedule)
    if getattr(args, "portfolio", False):
        overrides.setdefault("portfolio", True)
    if getattr(args, "steal", False):
        overrides.setdefault("work_stealing", True)
    slow_ms = getattr(args, "slow_query_ms", None)
    if slow_ms is not None:
        overrides.setdefault(
            "slow_query_ms", slow_ms if slow_ms > 0 else None
        )
    if getattr(args, "cache_dir", None):
        overrides.setdefault("cache_dir", args.cache_dir)
    return SearchConfig(
        memoize_solver=not getattr(args, "no_memo", False),
        state_subsumption=not getattr(args, "no_subsumption", False),
        partition_solver=not getattr(args, "no_partition", False),
        **overrides,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="thresher",
        description="Precise refutations for heap reachability (PLDI'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="find Activity leaks in an app")
    p_check.add_argument("file")
    p_check.add_argument("--annotated", action="store_true", help="Ann?=Y configuration")
    p_check.add_argument("--budget", type=int, default=10_000)
    p_check.add_argument("--witnesses", action="store_true", help="print path program witnesses")
    _add_driver_flags(p_check)

    p_graph = sub.add_parser("graph", help="dump the flow-insensitive points-to graph")
    p_graph.add_argument("file")
    p_graph.add_argument("--no-library", action="store_true")
    _add_obs_flags(p_graph)

    p_bench = sub.add_parser("bench", help="run the paper's evaluation tables")
    p_bench.add_argument("--table", choices=["1", "2"], default="1")
    p_bench.add_argument("--app", default=None, help="restrict to one benchmark app")
    _add_driver_flags(p_bench)

    p_wit = sub.add_parser("witness", help="witness or refute alarms for one static field")
    p_wit.add_argument("file")
    p_wit.add_argument("field", help="Class.field")
    p_wit.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_wit)

    p_casts = sub.add_parser("casts", help="check every downcast for safety")
    p_casts.add_argument("file")
    p_casts.add_argument("--no-library", action="store_true")
    p_casts.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_casts)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived analysis daemon with edit-level incremental re-analysis",
    )
    p_serve.add_argument("file")
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="speak JSON lines on stdin/stdout (default when --port is absent)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve HTTP/JSON on 127.0.0.1:N (POST /v1, GET /v1/status)",
    )
    p_serve.add_argument("--no-library", action="store_true")
    p_serve.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_serve)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running 'thresher serve' daemon",
    )
    p_top.add_argument(
        "--url", default=None, metavar="URL",
        help="daemon base URL (overrides --host/--port)",
    )
    p_top.add_argument(
        "--host", default="127.0.0.1", help="daemon host (default 127.0.0.1)"
    )
    p_top.add_argument(
        "--port", type=int, default=8787, metavar="N",
        help="daemon port (default 8787)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh interval in seconds (default 2)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (no screen refresh)",
    )

    p_explain = sub.add_parser(
        "explain",
        help="render a refutation certificate (or witness narrative) for one edge",
    )
    p_explain.add_argument(
        "--report", default=None, metavar="R.json",
        help="run report written by --json-report",
    )
    p_explain.add_argument(
        "--diff", nargs=2, default=None, metavar=("A.json", "B.json"),
        help=(
            "diff two run reports: attribute wall/verdict/tier/kill deltas"
            " per edge token (B - A)"
        ),
    )
    p_explain.add_argument(
        "--slow", action="store_true",
        help="list the slow-query flight recorder's captured searches",
    )
    p_explain.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="flight-recorder capture directory (default .repro-flight)",
    )
    p_explain.add_argument(
        "--journal", default=None, metavar="J.jsonl",
        help="search journal written by --journal (needed for certificates)",
    )
    p_explain.add_argument(
        "--edge", default=None, metavar="DESC",
        help="edge/fact description to explain (substring match)",
    )
    p_explain.add_argument(
        "--status", nargs="?", const="run",
        choices=["run", "refuted", "witnessed", "timeout"], default=None,
        help=(
            "with a verdict: explain the first record with that verdict"
            " instead of --edge; bare --status: print the run-level status"
            " (verdict summary + scheduling/per-rung table) and exit"
        ),
    )
    p_explain.add_argument(
        "--dot", default=None, metavar="FILE",
        help="also write the search tree as Graphviz DOT",
    )
    p_explain.add_argument(
        "--source", default=None, metavar="APP.mj",
        help="app source, enables the witness path narrative for witnessed edges",
    )
    p_explain.add_argument(
        "--no-library", action="store_true",
        help="with --source: do not wrap the app in the Android harness",
    )
    p_explain.add_argument(
        "--list", action="store_true",
        help="list the report's records (description + verdict) and exit",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or maintain the persistent cross-run verdict store",
    )
    p_cache.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help=(
            "stats: print store contents and session counters; prune:"
            " LRU-evict down to --max-entries; clear: drop every stored"
            " verdict and refuted state"
        ),
    )
    p_cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="store directory (default: env REPRO_CACHE_DIR)",
    )
    p_cache.add_argument(
        "--max-entries", type=_positive_int, default=None, metavar="N",
        help="with prune: target row cap per table",
    )
    p_cache.add_argument(
        "--json", action="store_true",
        help="machine-readable output",
    )

    args = parser.parse_args(argv)
    tracer = None
    journal = None
    streamer = None
    if getattr(args, "trace", None) and args.command != "explain":
        from .obs import trace

        tracer = trace.install()
    if getattr(args, "journal", None) and args.command != "explain":
        from .obs import provenance

        journal = provenance.install()
    if getattr(args, "metrics_stream", None) and args.command != "explain":
        from .obs.telemetry import MetricsStreamer

        streamer = MetricsStreamer(
            args.metrics_stream, interval=args.metrics_interval
        )
        streamer.start()
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "graph":
            return _cmd_graph(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "witness":
            return _cmd_witness(args)
        if args.command == "casts":
            return _cmd_casts(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "cache":
            return _cmd_cache(args)
        return 2
    finally:
        if streamer is not None:
            streamer.stop()
        if tracer is not None:
            from .obs import trace

            tracer.write(args.trace)
            trace.disable()
        if journal is not None:
            from .obs import provenance

            journal.write_jsonl(args.journal)
            provenance.disable()
        if getattr(args, "metrics", None):
            from . import perf
            from .obs import metrics

            perf.refresh_intern_gauges()
            metrics.REGISTRY.write(args.metrics)


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _on_event(args):
    from .engine import ProgressPrinter

    return ProgressPrinter() if getattr(args, "progress", False) else None


def _cmd_check(args) -> int:
    from .android.leaks import LeakChecker
    from .symbolic.witness import render_witness

    checker = LeakChecker(
        _read(args.file),
        app_name=args.file,
        annotated=args.annotated,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    report = checker.run()
    print(
        f"{report.num_alarms} alarm(s) from the points-to analysis;"
        f" {report.refuted_alarms} refuted,"
        f" {len(report.reported_alarms)} reported"
        f" ({report.edges_refuted} edges refuted, {report.edges_witnessed}"
        f" witnessed, {report.edge_timeouts} timeouts, {report.seconds:.1f}s)"
    )
    for alarm in report.alarms:
        print(f"  {alarm.status:9s} {alarm.root} ↪ {alarm.target}")
        if args.witnesses and alarm.witnessed_path:
            for edge in alarm.witnessed_path:
                result = checker.engine.refute_edge(edge)
                if result.witnessed:
                    print("    " + render_witness(checker.program, result).replace("\n", "\n    "))
    if args.json_report and report.run_report is not None:
        report.run_report.write(args.json_report)
    return 0 if not report.reported_alarms else 1


def _cmd_graph(args) -> int:
    from .android.harness import build_full_source
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    pta = analyze(build_program(frontend(source)))
    print(pta.graph.to_dot())
    return 0


def _cmd_bench(args) -> int:
    from .bench import APPS, app_by_name
    from .reporting import render_table1, render_table2, table1_row, table2_row

    apps = [app_by_name(args.app)] if args.app else APPS
    on_event = _on_event(args)
    if args.table == "1":
        rows = []
        reports = []
        for app in apps:
            for annotated in (False, True):
                row, report = table1_row(
                    app,
                    annotated,
                    config=_search_config(args),
                    jobs=args.jobs,
                    deadline=args.deadline,
                    on_event=on_event,
                )
                rows.append(row)
                reports.append(report)
        print(render_table1(rows))
        if args.json_report:
            _write_bench_reports(args.json_report, reports)
    else:
        rows = [
            table2_row(
                app,
                config=_search_config(args),
                jobs=args.jobs,
                deadline=args.deadline,
                on_event=on_event,
            )
            for app in apps
        ]
        print(render_table2(rows))
    return 0


def _write_bench_reports(path: str, reports) -> int:
    """Concatenate the per-app run reports into one JSON array."""
    import json

    payload = [
        r.run_report.to_dict() for r in reports if r.run_report is not None
    ]
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return 0


def _cmd_witness(args) -> int:
    from .android.leaks import LeakChecker
    from .pointsto import StaticFieldNode
    from .symbolic.witness import render_witness

    class_name, _, field_name = args.field.partition(".")
    if not field_name:
        print("field must be Class.field", file=sys.stderr)
        return 2
    checker = LeakChecker(
        _read(args.file),
        args.file,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    root = StaticFieldNode(class_name, field_name)
    edges = [e for e in checker.pta.graph.static_edges() if e.src == root]
    if not edges:
        print(f"no points-to edges out of {args.field}")
        return 0
    results = checker.driver.refute_edges(edges)
    from .pointsto.producers import edge_key

    for edge in edges:
        result = results[edge_key(edge)]
        print(f"{edge}: {result.status.upper()} ({result.path_programs} path programs)")
        if result.witnessed:
            print(render_witness(checker.program, result))
    if args.json_report:
        checker.driver.build_report(app=args.file, command="witness").write(
            args.json_report
        )
    checker.driver.close()
    return 0


def _cmd_casts(args) -> int:
    from .android.harness import build_full_source
    from .clients import SAFE, analyze_casts
    from .engine import RefutationDriver
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    program = build_program(frontend(source))
    pta = analyze(program)
    driver = RefutationDriver(
        pta,
        _search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    result = analyze_casts(pta, engine=driver)
    reports = result.results
    flagged = 0
    for report in reports:
        line = program.commands[report.label].pos.line
        print(
            f"L{line} in {report.method}: ({report.cast.class_name})"
            f" {report.cast.src} -> {report.status}"
        )
        if report.status != SAFE:
            flagged += 1
    print(f"{len(reports)} cast(s) checked, {flagged} flagged")
    if args.json_report:
        driver.build_report(app=args.file, command="casts").write(args.json_report)
    driver.close()
    return 0


def _cmd_serve(args) -> int:
    from .serve import ProgramSession, serve_http, serve_stdio

    if args.stdio and args.port is not None:
        print("pass --stdio or --port N, not both", file=sys.stderr)
        return 2
    session = ProgramSession(
        _read(args.file),
        include_library=not args.no_library,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        journal=bool(args.journal),
    )
    try:
        if args.port is not None:
            return serve_http(session, args.port)
        return serve_stdio(session)
    finally:
        session.close()


def _cmd_top(args) -> int:
    """Poll a serve daemon's ``GET /v1/status`` and render a refreshing
    terminal dashboard (in-flight searches, rung occupancy, workers,
    cache hit-rates)."""
    import json
    import time
    import urllib.error
    import urllib.request

    base = args.url or f"http://{args.host}:{args.port}"
    url = base.rstrip("/") + "/v1/status"
    while True:
        try:
            with urllib.request.urlopen(url, timeout=10) as resp:
                envelope = json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"top: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        if not envelope.get("ok", False):
            message = (envelope.get("error") or {}).get("message", "error")
            print(f"top: daemon error: {message}", file=sys.stderr)
            return 1
        body = _render_top(envelope.get("result") or {})
        if args.once:
            print(body)
            return 0
        # Home + clear-to-end keeps the refresh flicker-free.
        sys.stdout.write("\x1b[H\x1b[2J" + body + "\n")
        sys.stdout.flush()
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


def _render_top(status: dict) -> str:
    """One dashboard frame from a serve ``status`` payload. Pure —
    exercised directly by the tests."""
    lines = []
    program = status.get("program") or {}
    telemetry = status.get("telemetry") or {}
    run = telemetry.get("run") or {}
    totals = telemetry.get("totals") or {}
    head = "thresher top"
    if program:
        head += (
            f" — {program.get('methods', '?')} methods,"
            f" {program.get('commands', '?')} commands"
        )
    if run:
        state = "running" if run.get("finished") is None else "idle"
        head += (
            f" | last run: {state}, {run.get('total_jobs', 0)} job(s)"
            f" on {run.get('jobs', 0)}x{run.get('backend', '?')}"
        )
    lines.append(head)
    lines.append(
        "totals: "
        + "  ".join(
            f"{name} {totals.get(name, 0)}"
            for name in (
                "scheduled",
                "refuted",
                "witnessed",
                "timeout",
                "cached",
                "escalated",
                "stolen",
            )
        )
    )
    in_flight = telemetry.get("in_flight") or []
    lines.append(f"in flight ({len(in_flight)}):")
    for entry in in_flight[:10]:
        lines.append(
            f"  rung {entry.get('rung', 0)}"
            f"  steals {entry.get('steals', 0)}"
            f"  {entry.get('description', '?')}"
        )
    if len(in_flight) > 10:
        lines.append(f"  ... +{len(in_flight) - 10} more")
    rungs = (status.get("schedule") or {}).get("rungs") or []
    if rungs:
        lines.append("rung occupancy (scheduled/resolved/carryover):")
        for row in rungs:
            lines.append(
                f"  rung {row.get('rung', 0)} @ {row.get('budget', 0)}:"
                f" {row.get('scheduled', 0)}/{row.get('resolved', 0)}"
                f"/{row.get('carryover', 0)}"
            )
    workers = telemetry.get("workers") or {}
    if workers:
        done = sum(workers.values()) or 1
        lines.append("workers (completions):")
        for name, count in sorted(workers.items()):
            share = 100.0 * count / done
            lines.append(f"  {name or '<serial>'}: {count} ({share:.0f}%)")
    tiers = status.get("cache_tiers") or {}
    if tiers:
        answered = sum(
            tiers.get(k, 0)
            for k in (
                "context_hits",
                "component_memo_hits",
                "whole_query_memo_hits",
                "fastpath_unsat",
            )
        )
        asked = answered + tiers.get("decisions", 0)
        rate = 100.0 * answered / asked if asked else 0.0
        lines.append(
            f"cache: {answered}/{asked} solver questions answered from"
            f" cache ({rate:.0f}%)"
        )
    counters = status.get("metrics") or {}
    lines.append(
        f"serve: {counters.get('serve.requests', 0)} request(s),"
        f" {counters.get('serve.verdicts_reused', 0)} verdict(s) reused,"
        f" {counters.get('driver.steals', 0)} steal(s),"
        f" {counters.get('driver.priority_inversions', 0)} inversion(s)"
    )
    return "\n".join(lines)


def _explain_slow(args) -> int:
    """List the flight recorder's persisted slow-query captures."""
    from .obs import telemetry

    captures = telemetry.list_captures(args.flight_dir)
    directory = args.flight_dir or telemetry.flight_dir()
    if not captures:
        print(f"no flight-recorder captures under {directory}")
        print(
            "searches slower than --slow-query-ms (default 2000) are"
            " captured automatically; REPRO_FLIGHT_DISABLE=1 vetoes",
            file=sys.stderr,
        )
        return 0
    print(f"{len(captures)} slow-query capture(s) under {directory}:")
    for meta in captures:
        summary = meta.get("summary") or {}
        estimate = summary.get("estimate")
        estimate_text = (
            f", estimate {estimate}" if estimate is not None else ""
        )
        print(
            f"  [{meta.get('capture', '?')}] {meta.get('description', '?')}:"
            f" {summary.get('status', '?')} in"
            f" {summary.get('seconds', 0.0):.2f}s"
            f" ({summary.get('path_programs', 0)} path programs,"
            f" rung {summary.get('rung')}{estimate_text})"
        )
        kills = (meta.get("attribution") or {}).get("kills") or {}
        if kills:
            mix = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(kills.items())
            )
            print(f"      kills: {mix}")
        if meta.get("path"):
            print(f"      journal: {meta['path']}")
        if meta.get("trace"):
            print(f"      trace:   {meta['trace']}")
    return 0


def _cmd_explain(args) -> int:
    from .engine.report import RunReport
    from .obs import provenance

    if args.diff is not None:
        from .engine import diff_reports, render_diff

        a = RunReport.from_json(_read(args.diff[0]))
        b = RunReport.from_json(_read(args.diff[1]))
        print(render_diff(diff_reports(a, b)))
        return 0
    if args.slow:
        return _explain_slow(args)
    if args.report is None:
        print(
            "explain needs one of --report R.json, --diff A.json B.json,"
            " or --slow",
            file=sys.stderr,
        )
        return 2
    report = RunReport.from_json(_read(args.report))
    if args.list:
        for record in report.records:
            kills = sum(record.kill_reasons.values())
            extra = f", {kills} dead branch(es)" if kills else ""
            print(f"{record.status:9s} {record.description}{extra}")
        _print_cache_tiers(report.cache)
        _print_sched_table(report.schedule)
        return 0
    if args.status == "run":
        print(
            f"{report.command or 'run'}: {len(report.records)} job(s) —"
            f" {report.edges_refuted} refuted, {report.edges_witnessed}"
            f" witnessed, {report.edge_timeouts} timeout"
            f" ({report.wall_seconds:.2f}s wall, jobs={report.jobs},"
            f" backend={report.backend})"
        )
        _print_cache_tiers(report.cache)
        _print_sched_table(report.schedule)
        return 0
    record = _pick_record(report, args.edge, args.status)
    if record is None:
        wanted = args.edge or args.status or "<first>"
        print(f"no record matching {wanted!r} in {args.report}", file=sys.stderr)
        print("records:", file=sys.stderr)
        for r in report.records:
            print(f"  {r.status:9s} {r.description}", file=sys.stderr)
        return 2
    journal = None
    if args.journal:
        journal = provenance.RunJournal.read_jsonl(args.journal)
    if record.status == "witnessed":
        _explain_witness(args, record)
    else:
        if journal is None:
            print(
                f"{record.description}: {record.status.upper()}"
                f" ({record.path_programs} path programs,"
                f" {record.seconds:.2f}s)"
            )
            print(
                "pass --journal J.jsonl (recorded with the run's --journal"
                " flag) for the full refutation certificate",
                file=sys.stderr,
            )
        else:
            print(
                provenance.render_certificate(
                    record.description, journal, status=record.status
                )
            )
    if args.dot:
        if journal is None:
            print("--dot requires --journal", file=sys.stderr)
            return 2
        searches = journal.searches_for(record.description)
        with open(args.dot, "w") as fh:
            fh.write(provenance.to_dot(searches, title=record.description))
            fh.write("\n")
    return 0


def _print_cache_tiers(cache: dict) -> None:
    """Per-tier cache efficacy, from the run report's ``cache`` section:
    how many solver questions each tier answered without running the
    decision procedure, against the decisions that actually ran."""
    if not cache:
        return
    tiers = cache.get("tiers") or {}
    partitioned = cache.get("partition_solver")
    if not tiers and partitioned is not False:
        return
    print("cache tiers (answered without deciding):")
    if partitioned is False:
        # The context/component tiers only exist under relevance
        # partitioning; say so instead of showing misleading zeros.
        print("  partitioning disabled   (--no-partition)")
    else:
        print(f"  solver context hits    {tiers.get('context_hits', 0):>8}")
        print(
            f"  component memo hits    {tiers.get('component_memo_hits', 0):>8}"
        )
    print(f"  whole-query memo hits  {tiers.get('whole_query_memo_hits', 0):>8}")
    print(f"  syntactic UNSAT        {tiers.get('fastpath_unsat', 0):>8}")
    store = cache.get("store") or {}
    if store.get("enabled") or store.get("hits") or store.get("writes"):
        print(f"  persistent store hits  {store.get('hits', 0):>8}")
    print(f"  decisions actually run {tiers.get('decisions', 0):>8}")
    _print_store_row(store)


def _print_store_row(store: dict) -> None:
    """The persistent verdict store's run-report row (``explain --status``):
    session hit/miss/write/evict counters plus the durable file identity."""
    if not store or not (
        store.get("enabled")
        or store.get("hits")
        or store.get("misses")
        or store.get("writes")
    ):
        return
    line = (
        f"store: {store.get('hits', 0)} hit(s) /"
        f" {store.get('misses', 0)} miss(es),"
        f" {store.get('writes', 0)} write(s),"
        f" {store.get('evictions', 0)} eviction(s)"
    )
    if store.get("bytes") is not None:
        line += f", {store['bytes']} bytes on disk"
    print(line)
    if store.get("fingerprint"):
        print(
            f"  {store.get('entries', 0)} verdict(s) +"
            f" {store.get('refuted_entries', 0)} refuted state(s) at"
            f" {store.get('path', '?')} (fingerprint"
            f" {store['fingerprint']})"
        )


def _cmd_cache(args) -> int:
    import json as _json
    import os

    from .perf import store as perf_store

    cache_dir = perf_store.resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print(
            "cache: no store directory (pass --cache-dir DIR or set"
            " REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    if args.action == "stats":
        stats = perf_store.stats_for_dir(cache_dir)
        if stats is None:
            print(f"cache: no store at {perf_store.store_path(cache_dir)}")
            return 0
        if args.json:
            print(_json.dumps(stats, indent=2, sort_keys=True))
            return 0
        if "error" in stats:
            print(f"cache: {stats['path']}: {stats['error']}", file=sys.stderr)
            return 1
        print(f"store {stats['path']}")
        print(f"  schema version     {stats['schema_version']}")
        print(f"  solver fingerprint {stats['fingerprint']}")
        print(f"  verdicts           {stats['entries']}")
        print(f"  refuted states     {stats['refuted_entries']}")
        print(f"  stored hits        {stats['stored_hits']}")
        print(f"  size on disk       {stats['bytes']} bytes")
        return 0
    path = perf_store.store_path(cache_dir)
    if not os.path.exists(path):
        print(f"cache: no store at {path}", file=sys.stderr)
        return 2
    try:
        store = perf_store.VerdictStore(path)
    except perf_store.StoreInvalid as exc:
        if args.action == "clear":
            # A store the current build cannot even open (corrupt file,
            # old schema) is exactly what clear is for: start over.
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.remove(path + suffix)
                except OSError:
                    pass
            print(f"cache: removed unreadable store at {path} ({exc})")
            return 0
        print(f"cache: {path}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.action == "clear":
            store.clear()
            print(f"cache: cleared {path}")
        else:
            target = args.max_entries or perf_store.DEFAULT_MAX_ENTRIES
            dropped = store.prune(target)
            print(
                f"cache: pruned {dropped} row(s) from {path}"
                f" (cap {target} per table)"
            )
    finally:
        store.close()
    return 0


def _print_sched_table(schedule: dict) -> None:
    """The run's scheduling behavior, from the report's ``schedule``
    section: active policy/toggles, one row per portfolio rung (jobs
    scheduled / resolved / carried over at each budget), and the steal /
    priority-inversion counters."""
    if not schedule:
        return
    print(
        f"scheduling: policy={schedule.get('policy', 'lifo')}"
        f" portfolio={'on' if schedule.get('portfolio') else 'off'}"
        f" stealing={'on' if schedule.get('work_stealing') else 'off'}"
    )
    rungs = schedule.get("rungs") or []
    if rungs:
        print("  rung   budget  deadline  scheduled  resolved  carryover")
        for row in rungs:
            deadline = row.get("deadline")
            print(
                f"  {row.get('rung', 0):>4}"
                f"  {row.get('budget', 0):>7}"
                f"  {deadline if deadline is not None else '-':>8}"
                f"  {row.get('scheduled', 0):>9}"
                f"  {row.get('resolved', 0):>8}"
                f"  {row.get('carryover', 0):>9}"
            )
    steals = schedule.get("steals", 0)
    inversions = schedule.get("priority_inversions", 0)
    if steals or inversions or schedule.get("work_stealing"):
        print(f"  steals {steals}, priority inversions {inversions}")


def _pick_record(report, edge: str | None, status: str | None):
    records = report.records
    if edge is not None:
        for r in records:
            if r.description == edge:
                return r
        for r in records:
            if edge in r.description:
                return r
        return None
    if status is not None:
        for r in records:
            if r.status == status:
                return r
        return None
    return records[0] if records else None


def _explain_witness(args, record) -> None:
    from .symbolic.witness import render_trace

    header = (
        f"witness for {record.description} [{record.status}]"
        f" — the alarm survives: a concrete path produces the edge"
    )
    if not args.source:
        print(header)
        if record.witness_trace:
            print("  trace labels: " + " -> ".join(map(str, record.witness_trace)))
        print(
            "pass --source APP.mj to render the source-anchored path program",
            file=sys.stderr,
        )
        return
    from .android.harness import build_full_source
    from .ir import build_program
    from .lang import frontend

    if args.no_library:
        source = _read(args.source)
    else:
        source = build_full_source(_read(args.source))
    program = build_program(frontend(source))
    print(render_trace(program, record.witness_trace or [], header))


if __name__ == "__main__":
    raise SystemExit(main())
