"""Command-line interface: ``thresher``.

Subcommands::

    thresher check APP.mj [--annotated] [--budget N]   leak-check an app
    thresher graph APP.mj [--no-library]               dump the points-to graph
    thresher bench [--table1 | --table2] [--app NAME]  run the evaluation
    thresher witness APP.mj CLASS.FIELD                witness/refute one field
    thresher casts APP.mj                              check every downcast
    thresher explain --report R.json [--journal J.jsonl]
                                                       render a refutation
                                                       certificate or witness
                                                       narrative for one edge
    thresher serve APP.mj [--stdio | --port N]         long-lived analysis
                                                       daemon with edit-level
                                                       incremental re-analysis
                                                       (see docs/serve.md)

``APP.mj`` is a mini-Java source file (the app only; the Android library
and the lifecycle harness are added automatically unless ``--no-library``).

The refutation subcommands (``check``, ``witness``, ``casts``, ``bench``)
share the parallel-driver flags:

``--jobs N``
    Refute independent edges on N workers (default 1: the deterministic
    serial mode that reproduces the paper's tables bit-identically).
``--deadline S``
    Per-edge wall-clock deadline in seconds; an edge that exceeds it is
    reported TIMEOUT (not refuted), like the paper's per-edge timeout.
``--json-report PATH``
    Write the structured per-edge run report (JSON) to PATH.
``--progress``
    Stream per-edge progress lines to stderr as jobs finish.
``--no-memo`` / ``--no-subsumption`` / ``--no-partition``
    Ablation switches for the :mod:`repro.perf` caches: disable solver
    verdict memoization, the refuted-state cache plus worklist
    subsumption, or relevance-partitioned incremental solving
    (restoring the monolithic decision-procedure path), respectively
    (see ``docs/performance.md``).
``--backend {thread,process}``
    Worker pool flavor for ``--jobs N > 1`` (default thread). The process
    backend ships per-worker metrics/span/journal payloads back to the
    parent and merges them.
``--journal FILE``
    Record a per-query search journal (every state spawned/killed/
    witnessed, with typed kill reasons) and write it as JSONL; feed it to
    ``thresher explain`` for refutation certificates.

Every subcommand additionally accepts the observability flags:

``--trace FILE``
    Record hierarchical spans and write a Chrome trace-event JSON file
    (open it in ``chrome://tracing`` or https://ui.perfetto.dev).
``--metrics FILE``
    Write the process-wide metrics registry (counters, gauges,
    p50/p95 histograms) as JSON when the command finishes.

See ``docs/cli.md`` for the full reference with examples and
``docs/observability.md`` for the span/metric catalogue.
"""

from __future__ import annotations

import argparse
import sys


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON file (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the metrics registry (counters/gauges/histograms) as JSON",
    )


def _add_driver_flags(parser: argparse.ArgumentParser) -> None:
    _add_obs_flags(parser)
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker count for edge refutation (default 1: deterministic serial)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-edge wall-clock deadline in seconds (exceeded => TIMEOUT)",
    )
    parser.add_argument(
        "--json-report",
        default=None,
        metavar="PATH",
        help="write the structured per-edge run report (JSON) to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-edge progress to stderr",
    )
    parser.add_argument(
        "--no-memo",
        action="store_true",
        help="disable solver verdict memoization (ablation)",
    )
    parser.add_argument(
        "--no-subsumption",
        action="store_true",
        help="disable the refuted-state cache and worklist subsumption (ablation)",
    )
    parser.add_argument(
        "--no-partition",
        action="store_true",
        help=(
            "disable relevance-partitioned incremental solving and use the"
            " monolithic decision procedure (ablation)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default=None,
        help="worker pool flavor for --jobs N (default: thread)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="write the per-query search journal (JSONL) for 'thresher explain'",
    )
    parser.add_argument(
        "--schedule",
        choices=["lifo", "priority"],
        default=None,
        help=(
            "search scheduling policy: 'lifo' (the paper's DFS, default) or"
            " 'priority' (cost-model cheapest-first job dispatch and"
            " best-first worklist)"
        ),
    )
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help=(
            "cheap-first portfolio: run every job at a small budget rung"
            " first, escalating only the survivors (same final verdicts)"
        ),
    )
    parser.add_argument(
        "--steal",
        action="store_true",
        help=(
            "path-level work stealing (--jobs N, thread backend): drained"
            " workers steal unexplored subtrees from in-flight searches"
        ),
    )


def _search_config(args, **overrides):
    """Build a SearchConfig from the shared perf flags plus overrides."""
    from .symbolic import SearchConfig

    if getattr(args, "schedule", None):
        overrides.setdefault("schedule", args.schedule)
    if getattr(args, "portfolio", False):
        overrides.setdefault("portfolio", True)
    if getattr(args, "steal", False):
        overrides.setdefault("work_stealing", True)
    return SearchConfig(
        memoize_solver=not getattr(args, "no_memo", False),
        state_subsumption=not getattr(args, "no_subsumption", False),
        partition_solver=not getattr(args, "no_partition", False),
        **overrides,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="thresher",
        description="Precise refutations for heap reachability (PLDI'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="find Activity leaks in an app")
    p_check.add_argument("file")
    p_check.add_argument("--annotated", action="store_true", help="Ann?=Y configuration")
    p_check.add_argument("--budget", type=int, default=10_000)
    p_check.add_argument("--witnesses", action="store_true", help="print path program witnesses")
    _add_driver_flags(p_check)

    p_graph = sub.add_parser("graph", help="dump the flow-insensitive points-to graph")
    p_graph.add_argument("file")
    p_graph.add_argument("--no-library", action="store_true")
    _add_obs_flags(p_graph)

    p_bench = sub.add_parser("bench", help="run the paper's evaluation tables")
    p_bench.add_argument("--table", choices=["1", "2"], default="1")
    p_bench.add_argument("--app", default=None, help="restrict to one benchmark app")
    _add_driver_flags(p_bench)

    p_wit = sub.add_parser("witness", help="witness or refute alarms for one static field")
    p_wit.add_argument("file")
    p_wit.add_argument("field", help="Class.field")
    p_wit.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_wit)

    p_casts = sub.add_parser("casts", help="check every downcast for safety")
    p_casts.add_argument("file")
    p_casts.add_argument("--no-library", action="store_true")
    p_casts.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_casts)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived analysis daemon with edit-level incremental re-analysis",
    )
    p_serve.add_argument("file")
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="speak JSON lines on stdin/stdout (default when --port is absent)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve HTTP/JSON on 127.0.0.1:N (POST /v1, GET /v1/status)",
    )
    p_serve.add_argument("--no-library", action="store_true")
    p_serve.add_argument("--budget", type=int, default=10_000)
    _add_driver_flags(p_serve)

    p_explain = sub.add_parser(
        "explain",
        help="render a refutation certificate (or witness narrative) for one edge",
    )
    p_explain.add_argument(
        "--report", required=True, metavar="R.json",
        help="run report written by --json-report",
    )
    p_explain.add_argument(
        "--journal", default=None, metavar="J.jsonl",
        help="search journal written by --journal (needed for certificates)",
    )
    p_explain.add_argument(
        "--edge", default=None, metavar="DESC",
        help="edge/fact description to explain (substring match)",
    )
    p_explain.add_argument(
        "--status", nargs="?", const="run",
        choices=["run", "refuted", "witnessed", "timeout"], default=None,
        help=(
            "with a verdict: explain the first record with that verdict"
            " instead of --edge; bare --status: print the run-level status"
            " (verdict summary + scheduling/per-rung table) and exit"
        ),
    )
    p_explain.add_argument(
        "--dot", default=None, metavar="FILE",
        help="also write the search tree as Graphviz DOT",
    )
    p_explain.add_argument(
        "--source", default=None, metavar="APP.mj",
        help="app source, enables the witness path narrative for witnessed edges",
    )
    p_explain.add_argument(
        "--no-library", action="store_true",
        help="with --source: do not wrap the app in the Android harness",
    )
    p_explain.add_argument(
        "--list", action="store_true",
        help="list the report's records (description + verdict) and exit",
    )

    args = parser.parse_args(argv)
    tracer = None
    journal = None
    if getattr(args, "trace", None) and args.command != "explain":
        from .obs import trace

        tracer = trace.install()
    if getattr(args, "journal", None) and args.command != "explain":
        from .obs import provenance

        journal = provenance.install()
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "graph":
            return _cmd_graph(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "witness":
            return _cmd_witness(args)
        if args.command == "casts":
            return _cmd_casts(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return 2
    finally:
        if tracer is not None:
            from .obs import trace

            tracer.write(args.trace)
            trace.disable()
        if journal is not None:
            from .obs import provenance

            journal.write_jsonl(args.journal)
            provenance.disable()
        if getattr(args, "metrics", None):
            from . import perf
            from .obs import metrics

            perf.refresh_intern_gauges()
            metrics.REGISTRY.write(args.metrics)


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _on_event(args):
    from .engine import ProgressPrinter

    return ProgressPrinter() if getattr(args, "progress", False) else None


def _cmd_check(args) -> int:
    from .android.leaks import LeakChecker
    from .symbolic.witness import render_witness

    checker = LeakChecker(
        _read(args.file),
        app_name=args.file,
        annotated=args.annotated,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    report = checker.run()
    print(
        f"{report.num_alarms} alarm(s) from the points-to analysis;"
        f" {report.refuted_alarms} refuted,"
        f" {len(report.reported_alarms)} reported"
        f" ({report.edges_refuted} edges refuted, {report.edges_witnessed}"
        f" witnessed, {report.edge_timeouts} timeouts, {report.seconds:.1f}s)"
    )
    for alarm in report.alarms:
        print(f"  {alarm.status:9s} {alarm.root} ↪ {alarm.target}")
        if args.witnesses and alarm.witnessed_path:
            for edge in alarm.witnessed_path:
                result = checker.engine.refute_edge(edge)
                if result.witnessed:
                    print("    " + render_witness(checker.program, result).replace("\n", "\n    "))
    if args.json_report and report.run_report is not None:
        report.run_report.write(args.json_report)
    return 0 if not report.reported_alarms else 1


def _cmd_graph(args) -> int:
    from .android.harness import build_full_source
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    pta = analyze(build_program(frontend(source)))
    print(pta.graph.to_dot())
    return 0


def _cmd_bench(args) -> int:
    from .bench import APPS, app_by_name
    from .reporting import render_table1, render_table2, table1_row, table2_row

    apps = [app_by_name(args.app)] if args.app else APPS
    on_event = _on_event(args)
    if args.table == "1":
        rows = []
        reports = []
        for app in apps:
            for annotated in (False, True):
                row, report = table1_row(
                    app,
                    annotated,
                    config=_search_config(args),
                    jobs=args.jobs,
                    deadline=args.deadline,
                    on_event=on_event,
                )
                rows.append(row)
                reports.append(report)
        print(render_table1(rows))
        if args.json_report:
            _write_bench_reports(args.json_report, reports)
    else:
        rows = [
            table2_row(
                app,
                config=_search_config(args),
                jobs=args.jobs,
                deadline=args.deadline,
                on_event=on_event,
            )
            for app in apps
        ]
        print(render_table2(rows))
    return 0


def _write_bench_reports(path: str, reports) -> int:
    """Concatenate the per-app run reports into one JSON array."""
    import json

    payload = [
        r.run_report.to_dict() for r in reports if r.run_report is not None
    ]
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return 0


def _cmd_witness(args) -> int:
    from .android.leaks import LeakChecker
    from .pointsto import StaticFieldNode
    from .symbolic.witness import render_witness

    class_name, _, field_name = args.field.partition(".")
    if not field_name:
        print("field must be Class.field", file=sys.stderr)
        return 2
    checker = LeakChecker(
        _read(args.file),
        args.file,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    root = StaticFieldNode(class_name, field_name)
    edges = [e for e in checker.pta.graph.static_edges() if e.src == root]
    if not edges:
        print(f"no points-to edges out of {args.field}")
        return 0
    results = checker.driver.refute_edges(edges)
    from .pointsto.producers import edge_key

    for edge in edges:
        result = results[edge_key(edge)]
        print(f"{edge}: {result.status.upper()} ({result.path_programs} path programs)")
        if result.witnessed:
            print(render_witness(checker.program, result))
    if args.json_report:
        checker.driver.build_report(app=args.file, command="witness").write(
            args.json_report
        )
    checker.driver.close()
    return 0


def _cmd_casts(args) -> int:
    from .android.harness import build_full_source
    from .clients import SAFE, analyze_casts
    from .engine import RefutationDriver
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    program = build_program(frontend(source))
    pta = analyze(program)
    driver = RefutationDriver(
        pta,
        _search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        on_event=_on_event(args),
    )
    result = analyze_casts(pta, engine=driver)
    reports = result.results
    flagged = 0
    for report in reports:
        line = program.commands[report.label].pos.line
        print(
            f"L{line} in {report.method}: ({report.cast.class_name})"
            f" {report.cast.src} -> {report.status}"
        )
        if report.status != SAFE:
            flagged += 1
    print(f"{len(reports)} cast(s) checked, {flagged} flagged")
    if args.json_report:
        driver.build_report(app=args.file, command="casts").write(args.json_report)
    driver.close()
    return 0


def _cmd_serve(args) -> int:
    from .serve import ProgramSession, serve_http, serve_stdio

    if args.stdio and args.port is not None:
        print("pass --stdio or --port N, not both", file=sys.stderr)
        return 2
    session = ProgramSession(
        _read(args.file),
        include_library=not args.no_library,
        config=_search_config(args, path_budget=args.budget),
        jobs=args.jobs,
        deadline=args.deadline,
        backend=args.backend,
        journal=bool(args.journal),
    )
    try:
        if args.port is not None:
            return serve_http(session, args.port)
        return serve_stdio(session)
    finally:
        session.close()


def _cmd_explain(args) -> int:
    from .engine.report import RunReport
    from .obs import provenance

    report = RunReport.from_json(_read(args.report))
    if args.list:
        for record in report.records:
            kills = sum(record.kill_reasons.values())
            extra = f", {kills} dead branch(es)" if kills else ""
            print(f"{record.status:9s} {record.description}{extra}")
        _print_cache_tiers(report.cache)
        _print_sched_table(report.schedule)
        return 0
    if args.status == "run":
        print(
            f"{report.command or 'run'}: {len(report.records)} job(s) —"
            f" {report.edges_refuted} refuted, {report.edges_witnessed}"
            f" witnessed, {report.edge_timeouts} timeout"
            f" ({report.wall_seconds:.2f}s wall, jobs={report.jobs},"
            f" backend={report.backend})"
        )
        _print_sched_table(report.schedule)
        return 0
    record = _pick_record(report, args.edge, args.status)
    if record is None:
        wanted = args.edge or args.status or "<first>"
        print(f"no record matching {wanted!r} in {args.report}", file=sys.stderr)
        print("records:", file=sys.stderr)
        for r in report.records:
            print(f"  {r.status:9s} {r.description}", file=sys.stderr)
        return 2
    journal = None
    if args.journal:
        journal = provenance.RunJournal.read_jsonl(args.journal)
    if record.status == "witnessed":
        _explain_witness(args, record)
    else:
        if journal is None:
            print(
                f"{record.description}: {record.status.upper()}"
                f" ({record.path_programs} path programs,"
                f" {record.seconds:.2f}s)"
            )
            print(
                "pass --journal J.jsonl (recorded with the run's --journal"
                " flag) for the full refutation certificate",
                file=sys.stderr,
            )
        else:
            print(
                provenance.render_certificate(
                    record.description, journal, status=record.status
                )
            )
    if args.dot:
        if journal is None:
            print("--dot requires --journal", file=sys.stderr)
            return 2
        searches = journal.searches_for(record.description)
        with open(args.dot, "w") as fh:
            fh.write(provenance.to_dot(searches, title=record.description))
            fh.write("\n")
    return 0


def _print_cache_tiers(cache: dict) -> None:
    """Per-tier cache efficacy, from the run report's ``cache`` section:
    how many solver questions each tier answered without running the
    decision procedure, against the decisions that actually ran."""
    if not cache:
        return
    tiers = cache.get("tiers")
    if not tiers:
        return
    print("cache tiers (answered without deciding):")
    print(f"  solver context hits    {tiers.get('context_hits', 0):>8}")
    print(f"  component memo hits    {tiers.get('component_memo_hits', 0):>8}")
    print(f"  whole-query memo hits  {tiers.get('whole_query_memo_hits', 0):>8}")
    print(f"  syntactic UNSAT        {tiers.get('fastpath_unsat', 0):>8}")
    print(f"  decisions actually run {tiers.get('decisions', 0):>8}")


def _print_sched_table(schedule: dict) -> None:
    """The run's scheduling behavior, from the report's ``schedule``
    section: active policy/toggles, one row per portfolio rung (jobs
    scheduled / resolved / carried over at each budget), and the steal /
    priority-inversion counters."""
    if not schedule:
        return
    print(
        f"scheduling: policy={schedule.get('policy', 'lifo')}"
        f" portfolio={'on' if schedule.get('portfolio') else 'off'}"
        f" stealing={'on' if schedule.get('work_stealing') else 'off'}"
    )
    rungs = schedule.get("rungs") or []
    if rungs:
        print("  rung   budget  deadline  scheduled  resolved  carryover")
        for row in rungs:
            deadline = row.get("deadline")
            print(
                f"  {row.get('rung', 0):>4}"
                f"  {row.get('budget', 0):>7}"
                f"  {deadline if deadline is not None else '-':>8}"
                f"  {row.get('scheduled', 0):>9}"
                f"  {row.get('resolved', 0):>8}"
                f"  {row.get('carryover', 0):>9}"
            )
    steals = schedule.get("steals", 0)
    inversions = schedule.get("priority_inversions", 0)
    if steals or inversions or schedule.get("work_stealing"):
        print(f"  steals {steals}, priority inversions {inversions}")


def _pick_record(report, edge: str | None, status: str | None):
    records = report.records
    if edge is not None:
        for r in records:
            if r.description == edge:
                return r
        for r in records:
            if edge in r.description:
                return r
        return None
    if status is not None:
        for r in records:
            if r.status == status:
                return r
        return None
    return records[0] if records else None


def _explain_witness(args, record) -> None:
    from .symbolic.witness import render_trace

    header = (
        f"witness for {record.description} [{record.status}]"
        f" — the alarm survives: a concrete path produces the edge"
    )
    if not args.source:
        print(header)
        if record.witness_trace:
            print("  trace labels: " + " -> ".join(map(str, record.witness_trace)))
        print(
            "pass --source APP.mj to render the source-anchored path program",
            file=sys.stderr,
        )
        return
    from .android.harness import build_full_source
    from .ir import build_program
    from .lang import frontend

    if args.no_library:
        source = _read(args.source)
    else:
        source = build_full_source(_read(args.source))
    program = build_program(frontend(source))
    print(render_trace(program, record.witness_trace or [], header))


if __name__ == "__main__":
    raise SystemExit(main())
