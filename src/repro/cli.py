"""Command-line interface: ``thresher``.

Subcommands::

    thresher check APP.mj [--annotated] [--budget N]   leak-check an app
    thresher graph APP.mj [--no-library]               dump the points-to graph
    thresher bench [--table1 | --table2] [--app NAME]  run the evaluation
    thresher witness APP.mj CLASS.FIELD                witness/refute one field

``APP.mj`` is a mini-Java source file (the app only; the Android library
and the lifecycle harness are added automatically unless ``--no-library``).
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="thresher",
        description="Precise refutations for heap reachability (PLDI'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="find Activity leaks in an app")
    p_check.add_argument("file")
    p_check.add_argument("--annotated", action="store_true", help="Ann?=Y configuration")
    p_check.add_argument("--budget", type=int, default=10_000)
    p_check.add_argument("--witnesses", action="store_true", help="print path program witnesses")

    p_graph = sub.add_parser("graph", help="dump the flow-insensitive points-to graph")
    p_graph.add_argument("file")
    p_graph.add_argument("--no-library", action="store_true")

    p_bench = sub.add_parser("bench", help="run the paper's evaluation tables")
    p_bench.add_argument("--table", choices=["1", "2"], default="1")
    p_bench.add_argument("--app", default=None, help="restrict to one benchmark app")

    p_wit = sub.add_parser("witness", help="witness or refute alarms for one static field")
    p_wit.add_argument("file")
    p_wit.add_argument("field", help="Class.field")
    p_wit.add_argument("--budget", type=int, default=10_000)

    p_casts = sub.add_parser("casts", help="check every downcast for safety")
    p_casts.add_argument("file")
    p_casts.add_argument("--no-library", action="store_true")
    p_casts.add_argument("--budget", type=int, default=10_000)

    args = parser.parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "graph":
        return _cmd_graph(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "witness":
        return _cmd_witness(args)
    if args.command == "casts":
        return _cmd_casts(args)
    return 2


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _cmd_check(args) -> int:
    from .android.leaks import LeakChecker
    from .symbolic import SearchConfig
    from .symbolic.witness import render_witness

    checker = LeakChecker(
        _read(args.file),
        app_name=args.file,
        annotated=args.annotated,
        config=SearchConfig(path_budget=args.budget),
    )
    report = checker.run()
    print(
        f"{report.num_alarms} alarm(s) from the points-to analysis;"
        f" {report.refuted_alarms} refuted,"
        f" {len(report.reported_alarms)} reported"
        f" ({report.edges_refuted} edges refuted, {report.edges_witnessed}"
        f" witnessed, {report.edge_timeouts} timeouts, {report.seconds:.1f}s)"
    )
    for alarm in report.alarms:
        print(f"  {alarm.status:9s} {alarm.root} ↪ {alarm.target}")
        if args.witnesses and alarm.witnessed_path:
            for edge in alarm.witnessed_path:
                result = checker.engine.refute_edge(edge)
                if result.witnessed:
                    print("    " + render_witness(checker.program, result).replace("\n", "\n    "))
    return 0 if not report.reported_alarms else 1


def _cmd_graph(args) -> int:
    from .android.harness import build_full_source
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    pta = analyze(build_program(frontend(source)))
    print(pta.graph.to_dot())
    return 0


def _cmd_bench(args) -> int:
    from .bench import APPS, app_by_name
    from .reporting import render_table1, render_table2, table1_row, table2_row

    apps = [app_by_name(args.app)] if args.app else APPS
    if args.table == "1":
        rows = []
        for app in apps:
            for annotated in (False, True):
                row, _ = table1_row(app, annotated)
                rows.append(row)
        print(render_table1(rows))
    else:
        rows = [table2_row(app) for app in apps]
        print(render_table2(rows))
    return 0


def _cmd_witness(args) -> int:
    from .android.leaks import LeakChecker
    from .pointsto import StaticFieldNode
    from .symbolic import SearchConfig
    from .symbolic.witness import render_witness

    class_name, _, field_name = args.field.partition(".")
    if not field_name:
        print("field must be Class.field", file=sys.stderr)
        return 2
    checker = LeakChecker(
        _read(args.file), args.file, config=SearchConfig(path_budget=args.budget)
    )
    root = StaticFieldNode(class_name, field_name)
    edges = [e for e in checker.pta.graph.static_edges() if e.src == root]
    if not edges:
        print(f"no points-to edges out of {args.field}")
        return 0
    for edge in edges:
        result = checker.engine.refute_edge(edge)
        print(f"{edge}: {result.status.upper()} ({result.path_programs} path programs)")
        if result.witnessed:
            print(render_witness(checker.program, result))
    return 0


def _cmd_casts(args) -> int:
    from .android.harness import build_full_source
    from .clients import SAFE, check_casts
    from .ir import build_program
    from .lang import frontend
    from .pointsto import analyze
    from .symbolic import Engine, SearchConfig

    if args.no_library:
        source = _read(args.file)
    else:
        source = build_full_source(_read(args.file))
    program = build_program(frontend(source))
    pta = analyze(program)
    engine = Engine(pta, SearchConfig(path_budget=args.budget))
    reports = check_casts(pta, engine=engine)
    flagged = 0
    for report in reports:
        line = program.commands[report.label].pos.line
        print(
            f"L{line} in {report.method}: ({report.cast.class_name})"
            f" {report.cast.src} -> {report.status}"
        )
        if report.status != SAFE:
            flagged += 1
    print(f"{len(reports)} cast(s) checked, {flagged} flagged")
    return 0 if flagged == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
