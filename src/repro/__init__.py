"""Reproduction of "Thresher: Precise Refutations for Heap Reachability"
(Blackshear, Chang, Sridharan — PLDI 2013).

The public API, bottom-up:

* :mod:`repro.lang` — mini-Java frontend (lexer, parser, type checker);
* :mod:`repro.ir` — structured IR, builder, concrete interpreter;
* :mod:`repro.pointsto` — Andersen points-to analysis, call graph,
  mod/ref, edge producers, heap paths;
* :mod:`repro.solver` — pure-constraint decision procedure;
* :mod:`repro.symbolic` — the witness-refutation engine (the paper's
  contribution): mixed symbolic-explicit queries, backwards transfer
  functions, loop-invariant inference, interprocedural path search;
* :mod:`repro.engine` — the parallel refutation driver: worker pools,
  per-edge wall-clock deadlines, structured run reports, progress events;
* :mod:`repro.android` — the Activity-leak client;
* :mod:`repro.clients`, :mod:`repro.api` — the assertion clients (casts,
  immutability, encapsulation, reachability) behind one facade;
* :mod:`repro.obs` — span tracing and process-wide metrics;
* :mod:`repro.bench`, :mod:`repro.reporting` — the evaluation.

Quickstart::

    from repro import compile_program, analyze, Engine

    program = compile_program(source)
    pta = analyze(program)
    result = Engine(pta).refute_edge(next(pta.graph.heap_edges()))
    print(result.status)   # "refuted" | "witnessed" | "timeout"

or, one call through the facade (``analyze`` here is the points-to
analysis; the facade's entry point lives at :func:`repro.api.analyze` to
keep both importable)::

    from repro.api import analyze

    result = analyze(client="casts", source=source)
    print(result.verified, result.stats.items)
"""

from . import api, obs
from .android import LeakChecker, LeakReport, check_app
from .api import AnalysisRequest, AnalysisResult
from .engine import ProgressPrinter, RefutationDriver, RunReport
from .ir import Interpreter, build_program, compile_program
from .lang import frontend, parse_program
from .pointsto import (
    ContainerSensitive,
    ContextInsensitive,
    ObjectSensitive,
    analyze,
    find_alarms,
)
from .symbolic import (
    Engine,
    LoopInference,
    Representation,
    SearchConfig,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "obs",
    "AnalysisRequest",
    "AnalysisResult",
    "LeakChecker",
    "LeakReport",
    "check_app",
    "Interpreter",
    "build_program",
    "compile_program",
    "frontend",
    "parse_program",
    "ContainerSensitive",
    "ContextInsensitive",
    "ObjectSensitive",
    "analyze",
    "find_alarms",
    "Engine",
    "LoopInference",
    "Representation",
    "SearchConfig",
    "RefutationDriver",
    "RunReport",
    "ProgressPrinter",
    "__version__",
]
