"""Reproduction of "Thresher: Precise Refutations for Heap Reachability"
(Blackshear, Chang, Sridharan — PLDI 2013).

The public API, bottom-up:

* :mod:`repro.lang` — mini-Java frontend (lexer, parser, type checker);
* :mod:`repro.ir` — structured IR, builder, concrete interpreter;
* :mod:`repro.pointsto` — Andersen points-to analysis, call graph,
  mod/ref, edge producers, heap paths;
* :mod:`repro.solver` — pure-constraint decision procedure;
* :mod:`repro.symbolic` — the witness-refutation engine (the paper's
  contribution): mixed symbolic-explicit queries, backwards transfer
  functions, loop-invariant inference, interprocedural path search;
* :mod:`repro.engine` — the parallel refutation driver: worker pools,
  per-edge wall-clock deadlines, structured run reports, progress events;
* :mod:`repro.android` — the Activity-leak client;
* :mod:`repro.bench`, :mod:`repro.reporting` — the evaluation.

Quickstart::

    from repro import compile_program, analyze, Engine

    program = compile_program(source)
    pta = analyze(program)
    result = Engine(pta).refute_edge(next(pta.graph.heap_edges()))
    print(result.status)   # "refuted" | "witnessed" | "timeout"
"""

from .android import LeakChecker, LeakReport, check_app
from .engine import ProgressPrinter, RefutationDriver, RunReport
from .ir import Interpreter, build_program, compile_program
from .lang import frontend, parse_program
from .pointsto import (
    ContainerSensitive,
    ContextInsensitive,
    ObjectSensitive,
    analyze,
    find_alarms,
)
from .symbolic import (
    Engine,
    LoopInference,
    Representation,
    SearchConfig,
)

__version__ = "1.0.0"

__all__ = [
    "LeakChecker",
    "LeakReport",
    "check_app",
    "Interpreter",
    "build_program",
    "compile_program",
    "frontend",
    "parse_program",
    "ContainerSensitive",
    "ContextInsensitive",
    "ObjectSensitive",
    "analyze",
    "find_alarms",
    "Engine",
    "LoopInference",
    "Representation",
    "SearchConfig",
    "RefutationDriver",
    "RunReport",
    "ProgressPrinter",
    "__version__",
]
