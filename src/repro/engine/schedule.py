"""Adaptive search scheduling: cost-model priorities, cheap-first
portfolio budgets, and path-level work stealing.

Thresher's practicality rests on refuting the easy alarms fast so the
expensive backwards searches don't dominate wall clock (the paper's own
filter-then-refute pipeline is the same shape at the alarm level). This
module holds the three cooperating pieces the driver and executor share:

* :class:`CostModel` — a static, cheap estimate of how expensive one
  refutation job (edge or fact) will be, computed from the solved
  analysis only: producer count, per-method branchiness (``Choice``
  forks are an exponential proxy, ``Loop``s pay invariant inference),
  caller fan-in (backwards call exploration), and points-to fan-in of
  the edge's source region (aliasing case splits). The driver sorts
  batches cheapest-first under ``SearchConfig.schedule == "priority"``;
  :func:`state_cost` is the per-path-state analogue the executor's
  priority worklist uses.
* :func:`rung_ladder` — the cheap-first portfolio schedule: every edge
  runs at a small budget/deadline rung first and only survivors re-run
  at escalating rungs (``SearchConfig.portfolio``), re-using the
  refuted-state cache and solver memos across rungs so re-runs are warm.
* :class:`SharedWorklist` / :class:`StealRegistry` — path-level work
  stealing for the thread backend (``SearchConfig.work_stealing``): when
  a worker's edge queue drains it joins the heaviest in-flight search,
  stealing unexplored path-state subtrees from the shallow end of the
  owner's deque while the owner keeps popping newest-first (its usual
  DFS order).

Nothing here decides verdicts: priorities and rungs only reorder and
stage the same deterministic searches, and the final portfolio rung
always runs at the full configured budget/deadline, so verdicts are
bit-identical to the fixed-schedule run. Work stealing shares one
budget across thieves, which can resolve searches that would otherwise
time out (strictly more precise) — it is therefore its own toggle, off
by default.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..ir.stmts import Choice, Loop, walk_statements
from ..obs import metrics
from ..symbolic.config import SearchConfig

_STEALS = metrics.counter("driver.steals")
_INVERSIONS = metrics.counter("driver.priority_inversions")

#: ``SearchConfig.schedule`` values.
LIFO = "lifo"
PRIORITY = "priority"


def state_cost(state) -> int:
    """Cheap priority key for one path state: smaller = explored first.

    Constraint count plus symbolic-memory size — the two features that
    track how much solver work and how many materialization case splits
    a state can still generate. Deliberately O(constraints): the
    priority worklist pays this on every push.
    """
    q = state.query
    return len(q.pure) + q.memory_size()


class CostModel:
    """Static cost scores for refutation jobs, from the solved analysis.

    Scores are effort *estimates* in arbitrary units — only their order
    matters. Per-method scores are cached; scoring a batch of edges is
    O(batch + touched methods).
    """

    #: Cap on the exponential ``Choice`` proxy (2^choices) so one huge
    #: method cannot flatten the rest of the ordering into ties.
    CHOICE_CAP = 12

    def __init__(self, pta) -> None:
        self.pta = pta
        self.program = pta.program
        self._method_cost: dict[str, int] = {}

    def method_cost(self, qname: str) -> int:
        """Search effort expected inside one method: exponential in its
        nondeterministic forks, linear in its loops (invariant inference
        passes) and its caller fan-in (backwards call exploration)."""
        cached = self._method_cost.get(qname)
        if cached is not None:
            return cached
        method = self.program.methods.get(qname)
        if method is None:
            cost = 1
        else:
            choices = 0
            loops = 0
            for stmt in walk_statements(method.body):
                if isinstance(stmt, Choice):
                    choices += 1
                elif isinstance(stmt, Loop):
                    loops += 1
            cost = (1 << min(choices, self.CHOICE_CAP)) + 16 * loops
            cost += len(self.pta.callers_of(qname))
        self._method_cost[qname] = cost
        return cost

    def edge_cost(self, edge) -> int:
        """Expected effort to refute one points-to edge: one search per
        producer, each weighted by its method's cost, plus the points-to
        fan-in of the edge's source region (alias case splits)."""
        producers = self.pta.producers_of(edge)
        cost = 1 + len(producers)
        for label in producers:
            qname = self.program.command_method.get(label)
            if qname is not None:
                cost += self.method_cost(qname)
        cost += self._fan_in(edge)
        return cost

    def fact_cost(self, label: int, bindings) -> int:
        """Expected effort for one :meth:`Engine.refute_fact_at` query:
        the containing method's cost plus the sizes of the bound
        points-to regions (larger regions = more instances to disalias)."""
        qname = self.program.command_method.get(label)
        cost = 1 if qname is None else 1 + self.method_cost(qname)
        for _var, region in bindings:
            cost += len(region) if region is not None else 1
        return cost

    def _fan_in(self, edge) -> int:
        from ..pointsto.graph import StaticFieldNode

        try:
            if isinstance(edge.src, StaticFieldNode):
                region = self.pta.pt_static(
                    edge.src.class_name, edge.src.field_name
                )
            else:
                region = self.pta.pt_field(edge.src, edge.field)
        except Exception:
            return 0
        return len(region)


def rung_ladder(
    config: SearchConfig,
) -> list[tuple[Optional[int], Optional[float]]]:
    """The portfolio's ``(budget, deadline)`` rungs, cheapest first.

    Each divisor in ``config.portfolio_rungs`` yields a rung at
    ``path_budget // divisor`` (and ``deadline_seconds / divisor`` when a
    deadline is set); divisors ``<= 1`` are skipped. A final
    ``(None, None)`` rung — the full configured budget and deadline — is
    always appended, which is what makes portfolio verdicts bit-identical
    to the fixed-schedule run: any edge still unresolved gets exactly the
    search the fixed configuration would have run, warmed by the caches
    the earlier rungs populated.
    """
    ladder: list[tuple[Optional[int], Optional[float]]] = []
    for divisor in config.portfolio_rungs:
        if divisor <= 1:
            continue
        budget = max(1, config.path_budget // divisor)
        deadline = (
            config.deadline_seconds / divisor
            if config.deadline_seconds is not None
            else None
        )
        ladder.append((budget, deadline))
    ladder.append((None, None))
    return ladder


class InversionMeter:
    """Counts priority inversions in one dispatch batch: completions of
    a job while a strictly cheaper job is still unfinished — the
    head-of-line blocking the priority order exists to avoid. Inherent
    under parallelism (a cheap job can start last), so this is a report
    statistic, not an assertion."""

    def __init__(self, costs: dict) -> None:
        self._pending = dict(costs)
        self.inversions = 0

    def complete(self, key) -> None:
        cost = self._pending.pop(key, None)
        if cost is None or not self._pending:
            return
        if min(self._pending.values()) < cost:
            self.inversions += 1
            _INVERSIONS.inc()


# ---------------------------------------------------------------------------
# Path-level work stealing (thread backend)
# ---------------------------------------------------------------------------


class SharedWorklist:
    """One in-flight search's worklist, opened to helper threads.

    The owner pops newest-first (the engine's usual DFS order); helpers
    steal oldest-first — the shallowest, largest unexplored subtrees —
    from the other end of the deque. The path-program budget and the
    wall-clock deadline are shared: helper work is charged to the same
    search, so total effort accounting matches the serial semantics.
    """

    def __init__(
        self,
        states,
        budget: int,
        deadline_at: Optional[float],
        description: str = "",
    ) -> None:
        self._dq: deque = deque(states)
        self._cv = threading.Condition()
        self._in_flight = 0
        self._budget_left = budget
        self.deadline_at = deadline_at
        #: The owning search's display token (its edge/fact description),
        #: so steal telemetry can say *whose* subtree was taken.
        self.description = description
        self.witness = None
        self.timed_out = False
        self.done = False
        self.steals = 0
        #: Optional steal observer ``(shard) -> None``, attached by the
        #: registry; invoked outside the condition lock, one call per
        #: successful helper pop.
        self.on_steal = None

    # -- introspection (racy reads are fine: scheduling hints only) --------

    def queued(self) -> int:
        return len(self._dq)

    @property
    def budget_left(self) -> int:
        with self._cv:
            return self._budget_left

    @property
    def refuted(self) -> bool:
        """True once the search completed with every path state killed."""
        return self.done and self.witness is None and not self.timed_out

    # -- the work protocol --------------------------------------------------

    def get(self, owner: bool):
        """Take one state to step, or ``None`` when the search is over
        (owner) / there is nothing stealable right now (helper). The
        owner blocks while helpers still hold in-flight states — their
        successors may refill the deque."""
        stolen = False
        state = None
        with self._cv:
            while True:
                if self.done:
                    return None
                if self._dq:
                    if owner:
                        state = self._dq.pop()
                    else:
                        state = self._dq.popleft()
                        self.steals += 1
                        stolen = True
                        _STEALS.inc()
                    self._in_flight += 1
                    break
                if self._in_flight == 0:
                    self.done = True
                    self._cv.notify_all()
                    return None
                if not owner:
                    return None
                self._cv.wait(0.02)
        if stolen and self.on_steal is not None:
            # Outside the condition lock: the observer may emit events /
            # take other locks, and must never stall the work protocol.
            try:
                self.on_steal(self)
            except Exception:
                pass
        return state

    def put_results(self, successors) -> None:
        """Return one stepped state's successors and release its
        in-flight slot."""
        with self._cv:
            if successors and not self.done:
                self._dq.extend(successors)
            self._in_flight -= 1
            self._cv.notify_all()

    def found_witness(self, state) -> None:
        with self._cv:
            if self.witness is None:
                self.witness = state
            self.done = True
            self._in_flight -= 1
            self._cv.notify_all()

    def mark_timeout(self) -> None:
        with self._cv:
            self.timed_out = True
            self.done = True
            self._in_flight -= 1
            self._cv.notify_all()

    def spend(self, n: int = 1) -> bool:
        """Charge ``n`` path programs to the shared budget; ``False``
        once it is exhausted (the caller raises ``SearchTimeout``)."""
        with self._cv:
            self._budget_left -= n
            return self._budget_left >= 0

    def drain(self) -> list:
        """Empty the deque (owner-side, after the search ended): the
        abandoned states, for journal attribution."""
        with self._cv:
            leftover = list(self._dq)
            self._dq.clear()
            return leftover


class StealRegistry:
    """Directory of in-flight :class:`SharedWorklist`\\ s.

    Worker engines register their search's worklist for the duration of
    the search; drained pool threads loop on :meth:`pick`, assisting the
    heaviest search that has stealable states, until the driver
    :meth:`close`\\ s the registry at the end of the batch.
    """

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._active: list[SharedWorklist] = []
        self._closed = False
        #: Lifetime steal count, rolled up as searches unregister.
        self.steals = 0
        #: Optional steal observer ``(shard) -> None``, propagated onto
        #: every registered worklist (the driver wires its event bus here).
        self.on_steal = None

    def register(self, shard: SharedWorklist) -> None:
        if self.on_steal is not None and shard.on_steal is None:
            shard.on_steal = self.on_steal
        with self._cv:
            self._active.append(shard)
            self._cv.notify_all()

    def unregister(self, shard: SharedWorklist) -> None:
        with self._cv:
            try:
                self._active.remove(shard)
            except ValueError:
                pass
            self.steals += shard.steals
            self._cv.notify_all()

    def reopen(self) -> None:
        with self._cv:
            self._closed = False

    def close(self) -> None:
        """End the batch: helpers blocked in :meth:`pick` return None."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def pick(self) -> Optional[SharedWorklist]:
        """The heaviest in-flight search with stealable states; blocks
        (polling) while searches are active but momentarily empty, and
        returns ``None`` once the registry is closed."""
        with self._cv:
            while True:
                if self._closed:
                    return None
                candidates = [
                    s for s in self._active if not s.done and s.queued() > 0
                ]
                if candidates:
                    return max(candidates, key=lambda s: s.queued())
                self._cv.wait(0.01)


__all__ = [
    "LIFO",
    "PRIORITY",
    "CostModel",
    "InversionMeter",
    "SharedWorklist",
    "StealRegistry",
    "rung_ladder",
    "state_cost",
]
