"""The parallel refutation driver.

The paper's Section 4 observation makes edge refutation embarrassingly
parallel: each points-to edge on an alarm's heap path is refuted (or
witnessed) *independently* — a refutation is a fact about the whole
program, never about the alarm that asked. This module exploits that:

* :class:`RefutationDriver` schedules edge-refutation jobs across a
  ``concurrent.futures`` worker pool (``--jobs N``), thread- or
  process-backed;
* a per-edge **wall-clock deadline** (``--deadline S``) is enforced by the
  cooperative cancellation checks inside
  :class:`repro.symbolic.executor.Engine` (deadline exceeded ⇒ the edge is
  TIMEOUT / not-refuted, exactly the paper's treatment of its per-edge
  timeout);
* every job's outcome is recorded for the structured JSON
  :class:`repro.engine.report.RunReport`, and live
  :mod:`repro.engine.events` are emitted as jobs are scheduled and finish.

``jobs=1`` runs every job inline on one :class:`Engine` in submission
order — bit-identical to the sequential seed behavior, which keeps the
Table 1/2 reproduction deterministic. With ``jobs>1`` each worker owns a
private ``Engine`` (the search engine is single-threaded by design);
verdicts stay deterministic because the search itself is deterministic in
``(program, config)``, only completion *order* varies. Results are merged
into a shared cache so no edge is ever refuted twice.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Optional, Sequence

from .. import perf
from ..obs import metrics, provenance, telemetry, trace
from ..perf import store as perf_store
from ..perf.cache import RefutedStateCache
from ..pointsto import PointsToResult
from ..pointsto.graph import HeapEdge
from ..pointsto.producers import EdgeKey, edge_key
from ..symbolic import Engine, SearchConfig
from ..symbolic.stats import EdgeResult
from .events import (
    EdgeEscalated,
    EdgeFinished,
    EdgeScheduled,
    EdgeStolen,
    EventBus,
    RunFinished,
    RunStarted,
    SpanFinished,
)
from .report import EdgeRecord, RunReport
from .schedule import (
    PRIORITY,
    CostModel,
    InversionMeter,
    StealRegistry,
    rung_ladder,
)

_CACHE_HITS = metrics.counter("driver.cache_hits")
_JOBS_DONE = metrics.counter("driver.jobs_completed")
_JOB_SECONDS = metrics.histogram("driver.job_seconds")
_BATCH_SECONDS = metrics.histogram("driver.batch_seconds")

SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"

#: A fact-refutation request: (label, bindings, description) — the
#: arguments of :meth:`Engine.refute_fact_at` plus a display name.
FactJob = tuple  # (int, list[tuple[str, Optional[frozenset]]], str)


class RefutationDriver:
    """Schedules independent refutation jobs over a worker pool.

    Parameters
    ----------
    pta:
        The solved points-to analysis the engines search against.
    config:
        The search configuration shared by every worker engine.
    jobs:
        Worker count. ``1`` (the default) is the deterministic serial
        mode; ``N > 1`` fans edge jobs out over ``N`` workers.
    deadline:
        Per-edge wall-clock deadline in seconds (overrides
        ``config.deadline_seconds`` when given).
    backend:
        ``"thread"`` (default for ``jobs > 1``) or ``"process"``. The
        process backend re-builds one engine per worker process from a
        pickled analysis; when the analysis does not pickle it falls back
        to threads.
    on_event:
        Optional event sink (see :mod:`repro.engine.events`).
    """

    def __init__(
        self,
        pta: PointsToResult,
        config: Optional[SearchConfig] = None,
        jobs: int = 1,
        deadline: Optional[float] = None,
        backend: Optional[str] = None,
        on_event: Optional[Callable[[object], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        config = config or SearchConfig()
        if deadline is not None:
            config = config.copy(deadline_seconds=deadline)
        self.pta = pta
        self.config = config
        self.jobs = jobs
        self.backend = self._resolve_backend(backend)
        self.events = EventBus([on_event] if on_event is not None else None)
        #: The run-scoped refuted-state cache: serial and thread-pool
        #: engines share one lock-striped store, so a dead end proven by
        #: any job prunes every other job's search. Process workers keep
        #: per-worker stores; their hit/miss tallies are merged into the
        #: run report instead (see :meth:`build_report`).
        self.refuted_states: Optional[RefutedStateCache] = (
            RefutedStateCache() if config.state_subsumption else None
        )
        #: The serial engine: runs every job when ``jobs == 1`` and serves
        #: as the shared result cache that parallel results merge into.
        #: Its construction also (re)binds the process-wide persistent
        #: verdict store to ``config.cache_dir``.
        self.engine = Engine(pta, config, refuted_cache=self.refuted_states)
        #: Persistent-store binding for the refuted-state cache: seed the
        #: dead ends earlier runs proved over this exact program
        #: fingerprint, and write-through everything this run proves.
        self._refuted_scope: Optional[str] = None
        if self.refuted_states is not None and perf_store.ACTIVE is not None:
            scope = perf_store.refuted_scope(pta, config)
            if scope is not None:
                self._refuted_scope = scope
                self.refuted_states.bind_store(perf_store.ACTIVE, scope)
        #: Latest refuted-state tallies per process worker (cumulative,
        #: latest wins); folded into :attr:`refuted_states` at close.
        self._worker_refuted: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._records: dict = {}  # job key -> EdgeRecord, insertion-ordered
        #: Driver-lifetime count of jobs answered from the shared result
        #: cache (seeded or earlier-run verdicts). The serve session diffs
        #: this across a request to report ``verdicts_reused``.
        self.cache_hits = 0
        self._worker_snapshots: dict[str, dict] = {}
        #: Latest full metrics-registry snapshot per process worker
        #: (cumulative, latest wins); merged into the parent registry
        #: exactly once, at :meth:`close`.
        self._worker_metrics: dict[str, dict] = {}
        self._wall_seconds = 0.0
        self._pool: Optional[_FuturesExecutor] = None
        self._tls = threading.local()
        self._worker_counter = 0
        #: Summed seconds per span name, fed by the active tracer (if any);
        #: flows into RunReport.phase_seconds and SpanFinished bus events.
        self._phase_seconds: dict[str, float] = {}
        #: Scheduling state (repro.engine.schedule): the lazily-built cost
        #: model for priority ordering, per-rung portfolio stats, the
        #: priority-inversion count, and — thread backend with
        #: ``config.work_stealing`` — the steal registry idle workers use
        #: to assist in-flight searches.
        self._cost: Optional[CostModel] = None
        self._rungs: dict[int, dict] = {}
        self._inversions = 0
        self._steal_registry: Optional[StealRegistry] = (
            StealRegistry()
            if config.work_stealing and jobs > 1 and self.backend == THREAD
            else None
        )
        if self._steal_registry is not None:
            self._steal_registry.on_steal = self._on_steal
        self._tracer = trace.get_tracer()
        if self._tracer is not None:
            self._tracer.add_sink(self._on_span)
        metrics.gauge("driver.workers").set(jobs)

    # ------------------------------------------------------------------
    # Backend / pool management
    # ------------------------------------------------------------------

    def _resolve_backend(self, backend: Optional[str]) -> str:
        if self.jobs == 1:
            return SERIAL
        if backend is None or backend == THREAD:
            return THREAD
        if backend == PROCESS:
            try:
                pickle.dumps(self.pta)
            except Exception:
                return THREAD
            return PROCESS
        raise ValueError(f"unknown backend {backend!r}")

    def _get_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            if self.backend == PROCESS:
                try:
                    payload = pickle.dumps(
                        (
                            self.pta,
                            self.config,
                            trace.enabled(),
                            provenance.enabled(),
                        )
                    )
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        initializer=_process_init,
                        initargs=(payload,),
                    )
                except Exception:
                    # The analysis (or platform) does not support process
                    # workers; degrade to threads rather than failing the run.
                    self.backend = THREAD
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="refute",
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and fold pending process-worker
        metrics into the parent registry (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            worker_metrics = list(self._worker_metrics.values())
            self._worker_metrics = {}
            # The cache section of any later build_report must not re-add
            # counters that the registry merge below already folded in.
            self._worker_snapshots = {}
            worker_refuted = list(self._worker_refuted.values())
            self._worker_refuted = {}
        for snap in worker_metrics:
            metrics.REGISTRY.merge_snapshot(snap)
        if self.refuted_states is not None:
            # Fold process workers' refuted-state tallies in (summed, so
            # per-entry hit counts survive the pool), then hand the
            # accumulated per-point hits to the persistent store as its
            # cross-run LRU signal.
            for snap in worker_refuted:
                self.refuted_states.merge_snapshot(snap)
            self.refuted_states.flush_store_tallies()
        if perf_store.ACTIVE is not None:
            perf_store.ACTIVE.flush()
        if self._tracer is not None:
            self._tracer.remove_sink(self._on_span)
            self._tracer = None

    def __enter__(self) -> "RefutationDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _on_span(self, record) -> None:
        """Tracer sink: fold every finished span into the per-phase rollup
        and forward it onto the event bus (progress printer, collectors).
        Instant records (rung escalations, steals) are point events, not
        phases — they already reach the bus as typed lifecycle events."""
        if getattr(record, "kind", "span") == "instant":
            return
        with self._lock:
            self._phase_seconds[record.name] = (
                self._phase_seconds.get(record.name, 0.0) + record.duration
            )
        self.events.emit(
            SpanFinished(
                name=record.name,
                seconds=record.duration,
                thread=record.thread_name,
                attrs=record.attrs,
            )
        )

    def _on_steal(self, shard) -> None:
        """Steal observer (thread backend, ``config.work_stealing``): one
        call per stolen subtree, from the stealing thread, outside the
        worklist's lock. Emits the lifecycle event and drops an instant
        into the stealing worker's trace lane."""
        thread = threading.current_thread().name
        trace.instant(
            "driver.steal", description=shard.description, thread=thread
        )
        self.events.emit(
            EdgeStolen(
                description=shard.description,
                thread=thread,
                queued=shard.queued(),
            )
        )

    def _flight(
        self,
        kind: str,
        description: str,
        result: EdgeResult,
        worker: str,
        estimate: Optional[int] = None,
        replay: Optional[Callable[[], object]] = None,
    ) -> None:
        """Feed one finally-recorded search into the always-on flight
        recorder, capturing its journal when it crossed the slow-query
        threshold (``config.slow_query_ms``)."""
        summary = telemetry.search_summary(
            kind, description, result, worker=worker, estimate=estimate
        )
        telemetry.RECORDER.record(summary)
        threshold = self.config.slow_query_ms
        if threshold is not None and result.seconds * 1000.0 >= threshold:
            telemetry.RECORDER.capture(description, summary, replay=replay)

    @contextmanager
    def _timed_batch(self, total: int, jobs: int, backend: str, kind: str):
        """One batch of refutation jobs: RunStarted/RunFinished bracketing,
        wall-clock accounting, and the batch's root span — the single
        replacement for what used to be four copy-pasted
        ``perf_counter`` start/elapsed blocks.

        Yields the list the caller must append each job's
        :class:`EdgeResult` to; RunFinished aggregates are computed from
        it on exit.
        """
        self.events.emit(
            RunStarted(
                total_jobs=total,
                jobs=jobs,
                backend=backend,
                deadline=self.config.deadline_seconds,
            )
        )
        outcomes: list[EdgeResult] = []
        start = time.perf_counter()
        with trace.span("driver.batch", kind=kind, total=total, backend=backend):
            yield outcomes
        elapsed = time.perf_counter() - start
        with self._lock:
            self._wall_seconds += elapsed
        _BATCH_SECONDS.observe(elapsed)
        self.events.emit(
            RunFinished(
                refuted=sum(1 for r in outcomes if r.refuted),
                witnessed=sum(1 for r in outcomes if r.witnessed),
                timeouts=sum(1 for r in outcomes if r.timed_out),
                seconds=elapsed,
            )
        )

    @staticmethod
    def _job_span(kind: str, description: str):
        """The root span of one refutation job (``driver.job``); the
        engine's ``executor.search`` span nests directly under it."""
        return trace.span("driver.job", kind=kind, description=description)

    def _worker_engine(self) -> tuple[Engine, str]:
        """The calling thread's private engine (threads only)."""
        engine = getattr(self._tls, "engine", None)
        if engine is None:
            with self._lock:
                worker_id = self._worker_counter
                self._worker_counter += 1
            engine = Engine(
                self.pta, self.config, refuted_cache=self.refuted_states
            )
            if self._steal_registry is not None:
                engine.steal_registry = self._steal_registry
            self._tls.engine = engine
            self._tls.name = f"thread-{worker_id}"
        return engine, self._tls.name

    # ------------------------------------------------------------------
    # Scheduling (repro.engine.schedule)
    # ------------------------------------------------------------------

    def _cost_model(self) -> CostModel:
        if self._cost is None:
            self._cost = CostModel(self.pta)
        return self._cost

    def _priority_order_edges(self, todo: list) -> list:
        """Cheapest-first dispatch order under ``schedule == "priority"``
        (stable, with the edge token as tiebreak); input order otherwise."""
        if self.config.schedule != PRIORITY or len(todo) < 2:
            return todo
        model = self._cost_model()
        return sorted(
            todo, key=lambda kv: (model.edge_cost(kv[1]), str(kv[1]))
        )

    def _edge_meter(self, todo: list) -> Optional[InversionMeter]:
        """Inversion accounting for one parallel batch (priority only)."""
        if self.config.schedule != PRIORITY or len(todo) < 2:
            return None
        model = self._cost_model()
        return InversionMeter(
            {key: model.edge_cost(edge) for key, edge in todo}
        )

    def _rung_entry(self, rung_index: int, budget, deadline) -> dict:
        """The (run-cumulative) stats row for one portfolio rung."""
        with self._lock:
            entry = self._rungs.get(rung_index)
            if entry is None:
                entry = {
                    "rung": rung_index,
                    "budget": (
                        budget if budget is not None else self.config.path_budget
                    ),
                    "deadline": (
                        deadline
                        if deadline is not None
                        else self.config.deadline_seconds
                    ),
                    "scheduled": 0,
                    "resolved": 0,
                    "carryover": 0,
                }
                self._rungs[rung_index] = entry
            return entry

    def _rung_scheduled(self, stats: dict) -> None:
        """One job entered a rung. Mirrored into the metrics registry
        (``driver.rung.scheduled.<rung>``) so rung occupancy is visible to
        scrapes and merges across process-pool workers."""
        stats["scheduled"] += 1
        metrics.counter(f"driver.rung.scheduled.{stats['rung']}").inc()

    def _rung_carryover(
        self, stats: dict, description: str, ladder: list, rung_index: int
    ) -> None:
        """One job timed out at a non-final rung and escalates: count it,
        emit the lifecycle event, and drop a trace instant."""
        stats["carryover"] += 1
        metrics.counter(f"driver.rung.carryover.{stats['rung']}").inc()
        next_budget, next_deadline = ladder[rung_index + 1]
        trace.instant(
            "driver.rung_escalated", description=description, rung=rung_index
        )
        self.events.emit(
            EdgeEscalated(
                description=description,
                rung=rung_index,
                next_budget=next_budget,
                next_deadline=next_deadline,
            )
        )

    def _rung_resolved(
        self, stats: dict, result: EdgeResult, rung_index: int
    ) -> None:
        """One job got its final verdict at this rung."""
        result.rung = rung_index
        stats["resolved"] += 1
        stats[result.status] = stats.get(result.status, 0) + 1
        metrics.counter(f"driver.rung.resolved.{stats['rung']}").inc()

    def _submit_helpers(self) -> list:
        """Queue one steal-helper loop per pool slot *behind* the batch's
        edge jobs: a worker only picks a helper up once no queued job
        remains, i.e. exactly when it would otherwise idle through the
        batch's tail. No-op unless work stealing is active."""
        if self._steal_registry is None:
            return []
        self._steal_registry.reopen()
        pool = self._get_pool()
        return [pool.submit(self._steal_helper) for _ in range(self.jobs)]

    def _drain_helpers(self, helpers: list) -> None:
        if not helpers:
            return
        self._steal_registry.close()
        for fut in helpers:
            fut.result()

    def _steal_helper(self) -> None:
        """The idle-worker loop: assist the heaviest in-flight search
        (stealing unexplored path-state subtrees from its shared
        worklist) until the batch ends."""
        engine, _worker = self._worker_engine()
        registry = self._steal_registry
        while True:
            shard = registry.pick()
            if shard is None:
                return
            engine.assist(shard)

    def _schedule_section(self) -> dict:
        """The run report's ``schedule`` section (see RunReport)."""
        with self._lock:
            rungs = [dict(self._rungs[i]) for i in sorted(self._rungs)]
            inversions = self._inversions
        return {
            "policy": self.config.schedule,
            "portfolio": self.config.portfolio,
            "work_stealing": self.config.work_stealing,
            "rungs": rungs,
            "resolved_at_rung": {
                str(r["rung"]): r["resolved"] for r in rungs
            },
            "steals": (
                self._steal_registry.steals
                if self._steal_registry is not None
                else 0
            ),
            "priority_inversions": inversions,
        }

    # ------------------------------------------------------------------
    # Edge refutation
    # ------------------------------------------------------------------

    def refute_edge(self, edge: HeapEdge) -> EdgeResult:
        """Refute one edge inline (always serial; cache-aware).

        Under ``config.portfolio`` the inline job climbs the same
        cheap-first rung ladder as a batch, so serial path walks (the
        Section 2 loop) stage their budgets too; the final rung is the
        full configured budget, so the verdict is unchanged.
        """
        key = edge_key(edge)
        cached = self._cached(key)
        if cached is not None:
            _CACHE_HITS.inc()
            with self._lock:
                self.cache_hits += 1
            return cached
        if self.config.portfolio:
            result = self._refute_edge_ladder(edge)
        else:
            with self._job_span("edge", str(edge)):
                result = self.engine.refute_edge(edge)
            _JOBS_DONE.inc()
            _JOB_SECONDS.observe(result.seconds)
        self._store(key, edge, result, SERIAL)
        return result

    def _refute_edge_ladder(self, edge: HeapEdge) -> EdgeResult:
        """One inline edge through the portfolio rungs (see
        :meth:`_run_portfolio_edges` for the batch variant)."""
        ladder = rung_ladder(self.config)
        result = None
        for rung_index, (budget, deadline) in enumerate(ladder):
            final_rung = rung_index == len(ladder) - 1
            stats = self._rung_entry(rung_index, budget, deadline)
            self._rung_scheduled(stats)
            with self._job_span("edge", str(edge)):
                result = self.engine.refute_edge(
                    edge, budget=budget, deadline=deadline
                )
            _JOBS_DONE.inc()
            _JOB_SECONDS.observe(result.seconds)
            if result.timed_out and not final_rung:
                self._rung_carryover(stats, str(edge), ladder, rung_index)
                continue
            self._rung_resolved(stats, result, rung_index)
            break
        return result

    def refute_edges(
        self, edges: Sequence[HeapEdge]
    ) -> dict[EdgeKey, EdgeResult]:
        """Refute a batch of edges, fanning out over the worker pool.

        Duplicate and already-refuted edges are served from the shared
        cache; the rest run on the pool (or inline when ``jobs == 1``).
        Returns every requested edge's result keyed by its edge key.
        """
        ordered: list[tuple[EdgeKey, HeapEdge]] = []
        seen: set[EdgeKey] = set()
        for edge in edges:
            key = edge_key(edge)
            if key not in seen:
                seen.add(key)
                ordered.append((key, edge))
        results: dict[EdgeKey, EdgeResult] = {}
        todo: list[tuple[EdgeKey, HeapEdge]] = []
        for key, edge in ordered:
            cached = self._cached(key)
            if cached is not None:
                _CACHE_HITS.inc()
                with self._lock:
                    self.cache_hits += 1
                results[key] = cached
            else:
                todo.append((key, edge))
        todo = self._priority_order_edges(todo)
        total = len(ordered)
        with self._timed_batch(total, self.jobs, self.backend, "edges") as outcomes:
            done = 0
            for index, (key, edge) in enumerate(ordered):
                if key in results:
                    self._emit_finished(
                        str(edge), results[key], SERIAL, done, total, cached=True
                    )
                    done += 1
            if self.config.portfolio and todo:
                done = self._run_portfolio_edges(todo, results, done, total)
            elif self.jobs == 1 or len(todo) <= 1:
                for key, edge in todo:
                    with self._job_span("edge", str(edge)):
                        result = self.engine.refute_edge(edge)
                    _JOBS_DONE.inc()
                    _JOB_SECONDS.observe(result.seconds)
                    self._store(key, edge, result, SERIAL)
                    results[key] = result
                    self._emit_finished(str(edge), result, SERIAL, done, total)
                    done += 1
            else:
                done = self._run_parallel_edges(todo, results, done, total)
            outcomes.extend(results.values())
        return results

    def _run_parallel_edges(
        self,
        todo: list[tuple[EdgeKey, HeapEdge]],
        results: dict[EdgeKey, EdgeResult],
        done: int,
        total: int,
    ) -> int:
        from concurrent.futures import as_completed

        pool = self._get_pool()
        meter = self._edge_meter(todo)
        futures = {}
        for index, (key, edge) in enumerate(todo):
            self.events.emit(
                EdgeScheduled(description=str(edge), index=index, total=total)
            )
            if self.backend == PROCESS:
                fut = pool.submit(_process_refute_edge, edge)
            else:
                fut = pool.submit(self._thread_refute_edge, edge)
            futures[fut] = (key, edge)
        helpers = self._submit_helpers()
        try:
            for fut in as_completed(futures):
                key, edge = futures[fut]
                result, worker = self._unpack(fut.result())
                if meter is not None:
                    meter.complete(key)
                self._store(key, edge, result, worker)
                results[key] = result
                self._emit_finished(str(edge), result, worker, done, total)
                done += 1
        finally:
            self._drain_helpers(helpers)
        if meter is not None:
            with self._lock:
                self._inversions += meter.inversions
        return done

    def _run_portfolio_edges(
        self,
        todo: list[tuple[EdgeKey, HeapEdge]],
        results: dict[EdgeKey, EdgeResult],
        done: int,
        total: int,
    ) -> int:
        """Cheap-first portfolio dispatch: run the batch at the first
        (small) budget/deadline rung, then re-run only the TIMEOUT
        survivors at each escalating rung. Re-runs are warm — the
        refuted-state cache and solver memos persist across rungs. The
        final rung is the full configured budget/deadline, so every edge
        ends with exactly the verdict the fixed schedule would produce;
        only the final verdict is recorded (with the rung that resolved
        it), never the provisional carryover timeouts."""
        ladder = rung_ladder(self.config)
        pending = list(todo)
        for rung_index, (budget, deadline) in enumerate(ladder):
            final_rung = rung_index == len(ladder) - 1
            attempts = self._run_rung_edges(
                pending, budget, deadline, total
            )
            stats = self._rung_entry(rung_index, budget, deadline)
            survivors: list[tuple[EdgeKey, HeapEdge]] = []
            for (key, edge), (result, worker) in zip(pending, attempts):
                self._rung_scheduled(stats)
                if result.timed_out and not final_rung:
                    self._rung_carryover(stats, str(edge), ladder, rung_index)
                    survivors.append((key, edge))
                    continue
                self._rung_resolved(stats, result, rung_index)
                self._store(key, edge, result, worker)
                results[key] = result
                self._emit_finished(str(edge), result, worker, done, total)
                done += 1
            pending = survivors
            if not pending:
                break
        return done

    def _run_rung_edges(
        self,
        pending: list[tuple[EdgeKey, HeapEdge]],
        budget: Optional[int],
        deadline: Optional[float],
        total: int,
    ) -> list[tuple[EdgeResult, str]]:
        """One portfolio rung over ``pending``; results aligned with it."""
        out: list = [None] * len(pending)
        if self.jobs == 1 or len(pending) <= 1:
            for slot, (key, edge) in enumerate(pending):
                with self._job_span("edge", str(edge)):
                    result = self.engine.refute_edge(
                        edge, budget=budget, deadline=deadline
                    )
                _JOBS_DONE.inc()
                _JOB_SECONDS.observe(result.seconds)
                out[slot] = (result, SERIAL)
            return out
        from concurrent.futures import as_completed

        pool = self._get_pool()
        meter = self._edge_meter(pending)
        futures = {}
        for slot, (key, edge) in enumerate(pending):
            self.events.emit(
                EdgeScheduled(description=str(edge), index=slot, total=total)
            )
            if self.backend == PROCESS:
                fut = pool.submit(_process_refute_edge, edge, budget, deadline)
            else:
                fut = pool.submit(
                    self._thread_refute_edge, edge, budget, deadline
                )
            futures[fut] = slot
        helpers = self._submit_helpers()
        try:
            for fut in as_completed(futures):
                slot = futures[fut]
                out[slot] = self._unpack(fut.result())
                if meter is not None:
                    meter.complete(pending[slot][0])
        finally:
            self._drain_helpers(helpers)
        if meter is not None:
            with self._lock:
                self._inversions += meter.inversions
        return out

    def _thread_refute_edge(
        self,
        edge: HeapEdge,
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> tuple[EdgeResult, str]:
        engine, worker = self._worker_engine()
        with self._job_span("edge", str(edge)):
            result = engine.refute_edge(edge, budget=budget, deadline=deadline)
        _JOBS_DONE.inc()
        _JOB_SECONDS.observe(result.seconds)
        return result, worker

    def refute_path(
        self, path: Sequence[HeapEdge]
    ) -> list[tuple[HeapEdge, EdgeResult]]:
        """Refute the edges of one heap path.

        Serial mode walks the path in order and stops at the first refuted
        edge — exactly the sequential Section 2 loop, so ``jobs=1`` runs
        are bit-identical to the seed. Parallel mode refutes every edge of
        the path concurrently (the extra edges are not wasted: their
        verdicts are program-wide facts that later paths and alarms reuse
        from the cache). Returns ``(edge, result)`` pairs for the edges
        actually examined, in path order.

        Under ``config.portfolio`` the path runs the cheap-first rung
        ladder *across* its edges: a path's verdict needs only one
        refuted edge, so every edge tries the small budget rung first
        and escalation stops as soon as any edge refutes — an expensive
        edge is never run at full budget when a cheap path-mate already
        broke the path. Edges left unresolved when the path breaks are
        returned with their provisional TIMEOUT results and are neither
        cached nor recorded (a later path can still resolve them).
        """
        if self.config.portfolio:
            return self._refute_path_portfolio(path)
        if self.jobs == 1:
            total = len(path)
            out = []
            with self._timed_batch(total, 1, SERIAL, "path") as outcomes:
                for index, edge in enumerate(path):
                    cached = self._cached(edge_key(edge)) is not None
                    result = self.refute_edge(edge)
                    out.append((edge, result))
                    self._emit_finished(
                        str(edge), result, SERIAL, index, total, cached=cached
                    )
                    if result.refuted:
                        break
                outcomes.extend(r for _, r in out)
            return out
        results = self.refute_edges(path)
        return [(edge, results[edge_key(edge)]) for edge in path]

    def _refute_path_portfolio(
        self, path: Sequence[HeapEdge]
    ) -> list[tuple[HeapEdge, EdgeResult]]:
        """The cheap-first rung ladder across one path's edges (see
        :meth:`refute_path`); works at any worker count — each rung's
        batch fans out over the pool when ``jobs > 1``."""
        ordered: list[tuple[EdgeKey, HeapEdge]] = []
        seen: set[EdgeKey] = set()
        for edge in path:
            key = edge_key(edge)
            if key not in seen:
                seen.add(key)
                ordered.append((key, edge))
        results: dict[EdgeKey, EdgeResult] = {}
        pending: list[tuple[EdgeKey, HeapEdge]] = []
        for key, edge in ordered:
            cached = self._cached(key)
            if cached is not None:
                _CACHE_HITS.inc()
                with self._lock:
                    self.cache_hits += 1
                results[key] = cached
            else:
                pending.append((key, edge))
        if self.config.schedule == PRIORITY:
            pending = self._priority_order_edges(pending)
        total = len(ordered)
        ladder = rung_ladder(self.config)
        provisional: dict[EdgeKey, EdgeResult] = {}
        with self._timed_batch(total, self.jobs, self.backend, "path") as outcomes:
            done = 0
            broken = any(r.refuted for r in results.values())
            for rung_index, (budget, deadline) in enumerate(ladder):
                if broken or not pending:
                    break
                final_rung = rung_index == len(ladder) - 1
                attempts = self._run_rung_edges(pending, budget, deadline, total)
                stats = self._rung_entry(rung_index, budget, deadline)
                survivors: list[tuple[EdgeKey, HeapEdge]] = []
                for (key, edge), (result, worker) in zip(pending, attempts):
                    self._rung_scheduled(stats)
                    if result.timed_out and not final_rung:
                        self._rung_carryover(
                            stats, str(edge), ladder, rung_index
                        )
                        provisional[key] = result
                        survivors.append((key, edge))
                        continue
                    self._rung_resolved(stats, result, rung_index)
                    self._store(key, edge, result, worker)
                    results[key] = result
                    provisional.pop(key, None)
                    self._emit_finished(str(edge), result, worker, done, total)
                    done += 1
                    if result.refuted:
                        broken = True
                pending = survivors
            out = []
            for key, edge in ordered:
                result = results.get(key) or provisional.get(key)
                if result is not None:
                    out.append((edge, result))
            outcomes.extend(r for _, r in out)
        return out

    # ------------------------------------------------------------------
    # Fact refutation (the casts / immutability clients)
    # ------------------------------------------------------------------

    def refute_facts(self, requests: Sequence[FactJob]) -> list[EdgeResult]:
        """Run a batch of :meth:`Engine.refute_fact_at` queries.

        ``requests`` is a sequence of ``(label, bindings, description)``
        triples; results come back in request order regardless of the
        dispatch order (priority scheduling) or completion order on the
        pool.
        """
        total = len(requests)
        order = list(range(total))
        if self.config.schedule == PRIORITY and total > 1:
            model = self._cost_model()
            costs = {
                i: model.fact_cost(requests[i][0], requests[i][1])
                for i in order
            }
            order.sort(key=lambda i: (costs[i], requests[i][2]))
        results: list[Optional[EdgeResult]] = [None] * total
        with self._timed_batch(total, self.jobs, self.backend, "facts") as outcomes:
            if self.config.portfolio and requests:
                self._run_portfolio_facts(requests, order, results, total)
            elif self.jobs == 1 or total <= 1:
                done = 0
                for i in order:
                    label, bindings, description = requests[i]
                    with self._job_span("fact", description):
                        result = self.engine.refute_fact_at(
                            label, bindings, description=description
                        )
                    _JOBS_DONE.inc()
                    _JOB_SECONDS.observe(result.seconds)
                    results[i] = result
                    self._record_fact(
                        description, result, SERIAL, job=requests[i]
                    )
                    self._emit_finished(description, result, SERIAL, done, total)
                    done += 1
            else:
                from concurrent.futures import as_completed

                pool = self._get_pool()
                futures = {}
                for i in order:
                    label, bindings, description = requests[i]
                    self.events.emit(
                        EdgeScheduled(description=description, index=i, total=total)
                    )
                    if self.backend == PROCESS:
                        fut = pool.submit(
                            _process_refute_fact, label, bindings, description
                        )
                    else:
                        fut = pool.submit(
                            self._thread_refute_fact, label, bindings, description
                        )
                    futures[fut] = i
                helpers = self._submit_helpers()
                done = 0
                try:
                    for fut in as_completed(futures):
                        i = futures[fut]
                        result, worker = self._unpack(fut.result())
                        results[i] = result
                        description = requests[i][2]
                        self._record_fact(
                            description, result, worker, job=requests[i]
                        )
                        self._emit_finished(description, result, worker, done, total)
                        done += 1
                finally:
                    self._drain_helpers(helpers)
            final = [r for r in results if r is not None]
            outcomes.extend(final)
        return final

    def _run_portfolio_facts(
        self,
        requests: Sequence[FactJob],
        order: list[int],
        results: list[Optional[EdgeResult]],
        total: int,
    ) -> None:
        """Portfolio rung loop over fact jobs (see
        :meth:`_run_portfolio_edges`); fills ``results`` in place."""
        ladder = rung_ladder(self.config)
        pending = list(order)
        done = 0
        for rung_index, (budget, deadline) in enumerate(ladder):
            final_rung = rung_index == len(ladder) - 1
            attempts = self._run_rung_facts(
                requests, pending, budget, deadline, total
            )
            stats = self._rung_entry(rung_index, budget, deadline)
            survivors: list[int] = []
            for i, (result, worker) in zip(pending, attempts):
                self._rung_scheduled(stats)
                if result.timed_out and not final_rung:
                    self._rung_carryover(
                        stats, requests[i][2], ladder, rung_index
                    )
                    survivors.append(i)
                    continue
                self._rung_resolved(stats, result, rung_index)
                results[i] = result
                description = requests[i][2]
                self._record_fact(description, result, worker, job=requests[i])
                self._emit_finished(description, result, worker, done, total)
                done += 1
            pending = survivors
            if not pending:
                break

    def _run_rung_facts(
        self,
        requests: Sequence[FactJob],
        pending: list[int],
        budget: Optional[int],
        deadline: Optional[float],
        total: int,
    ) -> list[tuple[EdgeResult, str]]:
        out: list = [None] * len(pending)
        if self.jobs == 1 or len(pending) <= 1:
            for slot, i in enumerate(pending):
                label, bindings, description = requests[i]
                with self._job_span("fact", description):
                    result = self.engine.refute_fact_at(
                        label,
                        bindings,
                        budget=budget,
                        description=description,
                        deadline=deadline,
                    )
                _JOBS_DONE.inc()
                _JOB_SECONDS.observe(result.seconds)
                out[slot] = (result, SERIAL)
            return out
        from concurrent.futures import as_completed

        pool = self._get_pool()
        futures = {}
        for slot, i in enumerate(pending):
            label, bindings, description = requests[i]
            self.events.emit(
                EdgeScheduled(description=description, index=slot, total=total)
            )
            if self.backend == PROCESS:
                fut = pool.submit(
                    _process_refute_fact,
                    label,
                    bindings,
                    description,
                    budget,
                    deadline,
                )
            else:
                fut = pool.submit(
                    self._thread_refute_fact,
                    label,
                    bindings,
                    description,
                    budget,
                    deadline,
                )
            futures[fut] = slot
        helpers = self._submit_helpers()
        try:
            for fut in as_completed(futures):
                slot = futures[fut]
                out[slot] = self._unpack(fut.result())
        finally:
            self._drain_helpers(helpers)
        return out

    def _thread_refute_fact(
        self,
        label,
        bindings,
        description: str = "<fact>",
        budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> tuple[EdgeResult, str]:
        engine, worker = self._worker_engine()
        with self._job_span("fact", description):
            result = engine.refute_fact_at(
                label,
                bindings,
                budget=budget,
                description=description,
                deadline=deadline,
            )
        _JOBS_DONE.inc()
        _JOB_SECONDS.observe(result.seconds)
        return result, worker

    # ------------------------------------------------------------------
    # Results, records, reports
    # ------------------------------------------------------------------

    def _unpack(self, payload: tuple) -> tuple[EdgeResult, str]:
        """Unpack a worker's return value. Process workers append their
        process-cumulative cache-counter snapshot (latest snapshot per
        worker wins — counters are cumulative, so summing per-job values
        would double-count; merged into the run report) plus an ``obs``
        dict: a cumulative metrics snapshot (latest wins, merged at
        :meth:`close`), drained span records (incremental, absorbed into
        the parent tracer now), and drained search journals (incremental,
        absorbed into the parent run journal now)."""
        if len(payload) == 4:
            result, worker, snapshot, obs = payload
            with self._lock:
                self._worker_snapshots[worker] = snapshot
                if "metrics" in obs:
                    self._worker_metrics[worker] = obs["metrics"]
                if "refuted" in obs:
                    self._worker_refuted[worker] = obs["refuted"]
            spans = obs.get("spans")
            if spans and self._tracer is not None:
                self._tracer.absorb(spans, obs["pid"], obs["wall_epoch"])
            journals = obs.get("journals")
            if journals:
                book = provenance.get_journal()
                if book is not None:
                    book.absorb(journals)
            return result, worker
        result, worker = payload
        return result, worker

    def _cached(self, key: EdgeKey) -> Optional[EdgeResult]:
        with self._lock:
            return self.engine._edge_cache.get(key)

    def _store(
        self, key: EdgeKey, edge: HeapEdge, result: EdgeResult, worker: str
    ) -> None:
        with self._lock:
            # Merge into the serial engine's cache so every consumer —
            # including direct Engine users like witness rendering — sees
            # one coherent result set.
            if key not in self.engine._edge_cache:
                self.engine._edge_cache[key] = result
            fresh = key not in self._records
            if fresh:
                self._records[key] = EdgeRecord.from_result(
                    result, worker=worker, description=str(edge), kind="edge"
                )
        if fresh:
            # Outside the lock: a slow-query capture may replay the search.
            self._flight(
                "edge",
                str(edge),
                result,
                worker,
                estimate=(
                    self._cost.edge_cost(edge)
                    if self._cost is not None
                    else None
                ),
                replay=lambda: Engine(self.pta, self.config).refute_edge(edge),
            )

    def _record_fact(
        self,
        description: str,
        result: EdgeResult,
        worker: str,
        job: Optional[FactJob] = None,
    ) -> None:
        with self._lock:
            key = ("fact", description, len(self._records))
            self._records[key] = EdgeRecord.from_result(
                result, worker=worker, description=description, kind="fact"
            )
        if worker == "cache":
            # A reused verdict (serve session's fact-table hit): no search
            # ran, so there is nothing for the flight recorder to time.
            return
        estimate = None
        replay = None
        if job is not None:
            label, bindings = job[0], job[1]
            if self._cost is not None:
                estimate = self._cost.fact_cost(label, bindings)
            replay = lambda: Engine(self.pta, self.config).refute_fact_at(
                label, bindings, description=description
            )
        self._flight(
            "fact", description, result, worker, estimate=estimate,
            replay=replay,
        )

    def _emit_finished(
        self,
        description: str,
        result: EdgeResult,
        worker: str,
        index: int,
        total: int,
        cached: bool = False,
    ) -> None:
        self.events.emit(
            EdgeFinished(
                description=description,
                status=result.status,
                seconds=result.seconds,
                path_programs=result.path_programs,
                worker=worker,
                index=index,
                total=total,
                cached=cached,
            )
        )

    def edge_results(self) -> dict:
        """All per-edge outcomes so far, keyed by edge key."""
        with self._lock:
            return dict(self.engine._edge_cache)

    def seed_results(self, results: dict) -> None:
        """Pre-populate the shared result cache with verdicts carried over
        from an earlier run (the serve session's surviving verdict table).
        Seeded edges are answered as cache hits without re-searching;
        existing entries are never overwritten."""
        with self._lock:
            for key, result in results.items():
                self.engine._edge_cache.setdefault(key, result)

    def mark(self) -> tuple[int, int]:
        """A per-request bookmark: ``(records so far, cache hits so far)``.
        Pass the first element to :meth:`build_report` as ``since`` to
        report just the jobs run after the mark; diff the second against
        :attr:`cache_hits` for the verdicts served from cache since."""
        with self._lock:
            return len(self._records), self.cache_hits

    def build_report(
        self, app: str = "", command: str = "", since: int = 0
    ) -> RunReport:
        """Snapshot the run so far as a structured :class:`RunReport`.

        The ``cache`` section merges this process's cache counters with the
        latest snapshot from each process-pool worker, and adds the shared
        refuted-state store's size/hit statistics. Records are sorted by a
        stable job token (kind, then description) so reports are
        byte-stable across ``--jobs``, backend, and schedule
        permutations."""
        with self._lock:
            snapshots = list(self._worker_snapshots.values())
            worker_refuted = list(self._worker_refuted.values())
        cache = perf.cache_report(snapshots)
        if self.refuted_states is not None:
            # Sum in any process-worker tallies not yet folded in at close
            # — worker hit counts add to the parent's, they never replace
            # them (per-entry history must survive the process pool).
            stats = self.refuted_states.stats()
            for snap in worker_refuted:
                stats["hits"] += snap.get("hits", 0)
                stats["misses"] += snap.get("misses", 0)
            cache["refuted_store"] = stats
        else:
            cache["refuted_store"] = None
        cache["memoize_solver"] = self.config.memoize_solver
        cache["state_subsumption"] = self.config.state_subsumption
        cache["partition_solver"] = self.config.partition_solver
        schedule = self._schedule_section()
        with self._lock:
            return RunReport(
                app=app,
                command=command,
                jobs=self.jobs,
                backend=self.backend,
                deadline=self.config.deadline_seconds,
                path_budget=self.config.path_budget,
                wall_seconds=self._wall_seconds,
                records=sorted(
                    list(self._records.values())[since:],
                    key=lambda r: (r.kind, r.description),
                ),
                phase_seconds=dict(self._phase_seconds),
                cache=cache,
                schedule=schedule,
            )


# ---------------------------------------------------------------------------
# Process-backend workers (module-level so they pickle by reference)
# ---------------------------------------------------------------------------

_PROCESS_ENGINE: Optional[Engine] = None


def _process_init(payload: bytes) -> None:
    global _PROCESS_ENGINE
    pta, config, trace_on, journal_on = pickle.loads(payload)
    _PROCESS_ENGINE = Engine(pta, config)
    # Bind the worker's private refuted-state cache to the shared on-disk
    # store (the engine construction above attached it): the worker seeds
    # the same proven dead ends as the parent and write-through-persists
    # its own — sqlite's locking makes the concurrent writers safe.
    if (
        perf_store.ACTIVE is not None
        and _PROCESS_ENGINE._refuted_cache is not None
    ):
        scope = perf_store.refuted_scope(pta, config)
        if scope is not None:
            _PROCESS_ENGINE._refuted_cache.bind_store(perf_store.ACTIVE, scope)
    # A forked worker inherits the parent's registry values; zero them in
    # place so the snapshot shipped back carries only this worker's own
    # increments — the parent merge would otherwise re-add its own
    # pre-fork counts once per worker.
    metrics.REGISTRY.zero()
    # Mirror the parent's observability setup so worker spans and search
    # journals exist to be drained back after each job.
    if trace_on:
        trace.install()
    if journal_on:
        provenance.install()


def _worker_obs_payload() -> dict:
    """Everything a process worker ships back besides the job result:
    a cumulative metrics snapshot, plus incremental drains of the span
    buffer and the search journals when those subsystems are on."""
    obs: dict = {
        "metrics": metrics.REGISTRY.snapshot(),
        "pid": os.getpid(),
    }
    if (
        _PROCESS_ENGINE is not None
        and _PROCESS_ENGINE._refuted_cache is not None
    ):
        # Cumulative like the metrics snapshot: the parent keeps the
        # latest per worker and *sums* them in, never replaces.
        obs["refuted"] = _PROCESS_ENGINE._refuted_cache.snapshot()
    tracer = trace.get_tracer()
    if tracer is not None:
        obs["spans"] = [r.to_dict() for r in tracer.drain()]
        obs["wall_epoch"] = tracer.wall_epoch
    book = provenance.get_journal()
    if book is not None:
        obs["journals"] = book.drain()
    return obs


def _process_refute_edge(
    edge: HeapEdge,
    budget: Optional[int] = None,
    deadline: Optional[float] = None,
) -> tuple[EdgeResult, str, dict, dict]:
    assert _PROCESS_ENGINE is not None
    result = _PROCESS_ENGINE.refute_edge(edge, budget=budget, deadline=deadline)
    worker = f"process-{os.getpid()}"
    return result, worker, perf.cache_stats_snapshot(), _worker_obs_payload()


def _process_refute_fact(
    label,
    bindings,
    description: str = "<fact>",
    budget: Optional[int] = None,
    deadline: Optional[float] = None,
) -> tuple[EdgeResult, str, dict, dict]:
    assert _PROCESS_ENGINE is not None
    result = _PROCESS_ENGINE.refute_fact_at(
        label, bindings, budget=budget, description=description, deadline=deadline
    )
    worker = f"process-{os.getpid()}"
    return result, worker, perf.cache_stats_snapshot(), _worker_obs_payload()
