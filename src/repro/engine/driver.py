"""The parallel refutation driver.

The paper's Section 4 observation makes edge refutation embarrassingly
parallel: each points-to edge on an alarm's heap path is refuted (or
witnessed) *independently* — a refutation is a fact about the whole
program, never about the alarm that asked. This module exploits that:

* :class:`RefutationDriver` schedules edge-refutation jobs across a
  ``concurrent.futures`` worker pool (``--jobs N``), thread- or
  process-backed;
* a per-edge **wall-clock deadline** (``--deadline S``) is enforced by the
  cooperative cancellation checks inside
  :class:`repro.symbolic.executor.Engine` (deadline exceeded ⇒ the edge is
  TIMEOUT / not-refuted, exactly the paper's treatment of its per-edge
  timeout);
* every job's outcome is recorded for the structured JSON
  :class:`repro.engine.report.RunReport`, and live
  :mod:`repro.engine.events` are emitted as jobs are scheduled and finish.

``jobs=1`` runs every job inline on one :class:`Engine` in submission
order — bit-identical to the sequential seed behavior, which keeps the
Table 1/2 reproduction deterministic. With ``jobs>1`` each worker owns a
private ``Engine`` (the search engine is single-threaded by design);
verdicts stay deterministic because the search itself is deterministic in
``(program, config)``, only completion *order* varies. Results are merged
into a shared cache so no edge is ever refuted twice.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Optional, Sequence

from .. import perf
from ..obs import metrics, provenance, trace
from ..perf.cache import RefutedStateCache
from ..pointsto import PointsToResult
from ..pointsto.graph import HeapEdge
from ..pointsto.producers import EdgeKey, edge_key
from ..symbolic import Engine, SearchConfig
from ..symbolic.stats import EdgeResult
from .events import (
    EdgeFinished,
    EdgeScheduled,
    EventBus,
    RunFinished,
    RunStarted,
    SpanFinished,
)
from .report import EdgeRecord, RunReport

_CACHE_HITS = metrics.counter("driver.cache_hits")
_JOBS_DONE = metrics.counter("driver.jobs_completed")
_JOB_SECONDS = metrics.histogram("driver.job_seconds")
_BATCH_SECONDS = metrics.histogram("driver.batch_seconds")

SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"

#: A fact-refutation request: (label, bindings, description) — the
#: arguments of :meth:`Engine.refute_fact_at` plus a display name.
FactJob = tuple  # (int, list[tuple[str, Optional[frozenset]]], str)


class RefutationDriver:
    """Schedules independent refutation jobs over a worker pool.

    Parameters
    ----------
    pta:
        The solved points-to analysis the engines search against.
    config:
        The search configuration shared by every worker engine.
    jobs:
        Worker count. ``1`` (the default) is the deterministic serial
        mode; ``N > 1`` fans edge jobs out over ``N`` workers.
    deadline:
        Per-edge wall-clock deadline in seconds (overrides
        ``config.deadline_seconds`` when given).
    backend:
        ``"thread"`` (default for ``jobs > 1``) or ``"process"``. The
        process backend re-builds one engine per worker process from a
        pickled analysis; when the analysis does not pickle it falls back
        to threads.
    on_event:
        Optional event sink (see :mod:`repro.engine.events`).
    """

    def __init__(
        self,
        pta: PointsToResult,
        config: Optional[SearchConfig] = None,
        jobs: int = 1,
        deadline: Optional[float] = None,
        backend: Optional[str] = None,
        on_event: Optional[Callable[[object], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        config = config or SearchConfig()
        if deadline is not None:
            config = config.copy(deadline_seconds=deadline)
        self.pta = pta
        self.config = config
        self.jobs = jobs
        self.backend = self._resolve_backend(backend)
        self.events = EventBus([on_event] if on_event is not None else None)
        #: The run-scoped refuted-state cache: serial and thread-pool
        #: engines share one lock-striped store, so a dead end proven by
        #: any job prunes every other job's search. Process workers keep
        #: per-worker stores; their hit/miss tallies are merged into the
        #: run report instead (see :meth:`build_report`).
        self.refuted_states: Optional[RefutedStateCache] = (
            RefutedStateCache() if config.state_subsumption else None
        )
        #: The serial engine: runs every job when ``jobs == 1`` and serves
        #: as the shared result cache that parallel results merge into.
        self.engine = Engine(pta, config, refuted_cache=self.refuted_states)
        self._lock = threading.Lock()
        self._records: dict = {}  # job key -> EdgeRecord, insertion-ordered
        #: Driver-lifetime count of jobs answered from the shared result
        #: cache (seeded or earlier-run verdicts). The serve session diffs
        #: this across a request to report ``verdicts_reused``.
        self.cache_hits = 0
        self._worker_snapshots: dict[str, dict] = {}
        #: Latest full metrics-registry snapshot per process worker
        #: (cumulative, latest wins); merged into the parent registry
        #: exactly once, at :meth:`close`.
        self._worker_metrics: dict[str, dict] = {}
        self._wall_seconds = 0.0
        self._pool: Optional[_FuturesExecutor] = None
        self._tls = threading.local()
        self._worker_counter = 0
        #: Summed seconds per span name, fed by the active tracer (if any);
        #: flows into RunReport.phase_seconds and SpanFinished bus events.
        self._phase_seconds: dict[str, float] = {}
        self._tracer = trace.get_tracer()
        if self._tracer is not None:
            self._tracer.add_sink(self._on_span)
        metrics.gauge("driver.workers").set(jobs)

    # ------------------------------------------------------------------
    # Backend / pool management
    # ------------------------------------------------------------------

    def _resolve_backend(self, backend: Optional[str]) -> str:
        if self.jobs == 1:
            return SERIAL
        if backend is None or backend == THREAD:
            return THREAD
        if backend == PROCESS:
            try:
                pickle.dumps(self.pta)
            except Exception:
                return THREAD
            return PROCESS
        raise ValueError(f"unknown backend {backend!r}")

    def _get_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            if self.backend == PROCESS:
                try:
                    payload = pickle.dumps(
                        (
                            self.pta,
                            self.config,
                            trace.enabled(),
                            provenance.enabled(),
                        )
                    )
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        initializer=_process_init,
                        initargs=(payload,),
                    )
                except Exception:
                    # The analysis (or platform) does not support process
                    # workers; degrade to threads rather than failing the run.
                    self.backend = THREAD
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="refute",
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and fold pending process-worker
        metrics into the parent registry (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            worker_metrics = list(self._worker_metrics.values())
            self._worker_metrics = {}
            # The cache section of any later build_report must not re-add
            # counters that the registry merge below already folded in.
            self._worker_snapshots = {}
        for snap in worker_metrics:
            metrics.REGISTRY.merge_snapshot(snap)
        if self._tracer is not None:
            self._tracer.remove_sink(self._on_span)
            self._tracer = None

    def __enter__(self) -> "RefutationDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _on_span(self, record) -> None:
        """Tracer sink: fold every finished span into the per-phase rollup
        and forward it onto the event bus (progress printer, collectors)."""
        with self._lock:
            self._phase_seconds[record.name] = (
                self._phase_seconds.get(record.name, 0.0) + record.duration
            )
        self.events.emit(
            SpanFinished(
                name=record.name,
                seconds=record.duration,
                thread=record.thread_name,
                attrs=record.attrs,
            )
        )

    @contextmanager
    def _timed_batch(self, total: int, jobs: int, backend: str, kind: str):
        """One batch of refutation jobs: RunStarted/RunFinished bracketing,
        wall-clock accounting, and the batch's root span — the single
        replacement for what used to be four copy-pasted
        ``perf_counter`` start/elapsed blocks.

        Yields the list the caller must append each job's
        :class:`EdgeResult` to; RunFinished aggregates are computed from
        it on exit.
        """
        self.events.emit(
            RunStarted(
                total_jobs=total,
                jobs=jobs,
                backend=backend,
                deadline=self.config.deadline_seconds,
            )
        )
        outcomes: list[EdgeResult] = []
        start = time.perf_counter()
        with trace.span("driver.batch", kind=kind, total=total, backend=backend):
            yield outcomes
        elapsed = time.perf_counter() - start
        with self._lock:
            self._wall_seconds += elapsed
        _BATCH_SECONDS.observe(elapsed)
        self.events.emit(
            RunFinished(
                refuted=sum(1 for r in outcomes if r.refuted),
                witnessed=sum(1 for r in outcomes if r.witnessed),
                timeouts=sum(1 for r in outcomes if r.timed_out),
                seconds=elapsed,
            )
        )

    @staticmethod
    def _job_span(kind: str, description: str):
        """The root span of one refutation job (``driver.job``); the
        engine's ``executor.search`` span nests directly under it."""
        return trace.span("driver.job", kind=kind, description=description)

    def _worker_engine(self) -> tuple[Engine, str]:
        """The calling thread's private engine (threads only)."""
        engine = getattr(self._tls, "engine", None)
        if engine is None:
            with self._lock:
                worker_id = self._worker_counter
                self._worker_counter += 1
            engine = Engine(
                self.pta, self.config, refuted_cache=self.refuted_states
            )
            self._tls.engine = engine
            self._tls.name = f"thread-{worker_id}"
        return engine, self._tls.name

    # ------------------------------------------------------------------
    # Edge refutation
    # ------------------------------------------------------------------

    def refute_edge(self, edge: HeapEdge) -> EdgeResult:
        """Refute one edge inline (always serial; cache-aware)."""
        key = edge_key(edge)
        cached = self._cached(key)
        if cached is not None:
            _CACHE_HITS.inc()
            with self._lock:
                self.cache_hits += 1
            return cached
        with self._job_span("edge", str(edge)):
            result = self.engine.refute_edge(edge)
        _JOBS_DONE.inc()
        _JOB_SECONDS.observe(result.seconds)
        self._store(key, edge, result, SERIAL)
        return result

    def refute_edges(
        self, edges: Sequence[HeapEdge]
    ) -> dict[EdgeKey, EdgeResult]:
        """Refute a batch of edges, fanning out over the worker pool.

        Duplicate and already-refuted edges are served from the shared
        cache; the rest run on the pool (or inline when ``jobs == 1``).
        Returns every requested edge's result keyed by its edge key.
        """
        ordered: list[tuple[EdgeKey, HeapEdge]] = []
        seen: set[EdgeKey] = set()
        for edge in edges:
            key = edge_key(edge)
            if key not in seen:
                seen.add(key)
                ordered.append((key, edge))
        results: dict[EdgeKey, EdgeResult] = {}
        todo: list[tuple[EdgeKey, HeapEdge]] = []
        for key, edge in ordered:
            cached = self._cached(key)
            if cached is not None:
                _CACHE_HITS.inc()
                with self._lock:
                    self.cache_hits += 1
                results[key] = cached
            else:
                todo.append((key, edge))
        total = len(ordered)
        with self._timed_batch(total, self.jobs, self.backend, "edges") as outcomes:
            done = 0
            for index, (key, edge) in enumerate(ordered):
                if key in results:
                    self._emit_finished(
                        str(edge), results[key], SERIAL, done, total, cached=True
                    )
                    done += 1
            if self.jobs == 1 or len(todo) <= 1:
                for key, edge in todo:
                    with self._job_span("edge", str(edge)):
                        result = self.engine.refute_edge(edge)
                    _JOBS_DONE.inc()
                    _JOB_SECONDS.observe(result.seconds)
                    self._store(key, edge, result, SERIAL)
                    results[key] = result
                    self._emit_finished(str(edge), result, SERIAL, done, total)
                    done += 1
            else:
                done = self._run_parallel_edges(todo, results, done, total)
            outcomes.extend(results.values())
        return results

    def _run_parallel_edges(
        self,
        todo: list[tuple[EdgeKey, HeapEdge]],
        results: dict[EdgeKey, EdgeResult],
        done: int,
        total: int,
    ) -> int:
        from concurrent.futures import as_completed

        pool = self._get_pool()
        futures = {}
        for index, (key, edge) in enumerate(todo):
            self.events.emit(
                EdgeScheduled(description=str(edge), index=index, total=total)
            )
            if self.backend == PROCESS:
                fut = pool.submit(_process_refute_edge, edge)
            else:
                fut = pool.submit(self._thread_refute_edge, edge)
            futures[fut] = (key, edge)
        for fut in as_completed(futures):
            key, edge = futures[fut]
            result, worker = self._unpack(fut.result())
            self._store(key, edge, result, worker)
            results[key] = result
            self._emit_finished(str(edge), result, worker, done, total)
            done += 1
        return done

    def _thread_refute_edge(self, edge: HeapEdge) -> tuple[EdgeResult, str]:
        engine, worker = self._worker_engine()
        with self._job_span("edge", str(edge)):
            result = engine.refute_edge(edge)
        _JOBS_DONE.inc()
        _JOB_SECONDS.observe(result.seconds)
        return result, worker

    def refute_path(
        self, path: Sequence[HeapEdge]
    ) -> list[tuple[HeapEdge, EdgeResult]]:
        """Refute the edges of one heap path.

        Serial mode walks the path in order and stops at the first refuted
        edge — exactly the sequential Section 2 loop, so ``jobs=1`` runs
        are bit-identical to the seed. Parallel mode refutes every edge of
        the path concurrently (the extra edges are not wasted: their
        verdicts are program-wide facts that later paths and alarms reuse
        from the cache). Returns ``(edge, result)`` pairs for the edges
        actually examined, in path order.
        """
        if self.jobs == 1:
            total = len(path)
            out = []
            with self._timed_batch(total, 1, SERIAL, "path") as outcomes:
                for index, edge in enumerate(path):
                    cached = self._cached(edge_key(edge)) is not None
                    result = self.refute_edge(edge)
                    out.append((edge, result))
                    self._emit_finished(
                        str(edge), result, SERIAL, index, total, cached=cached
                    )
                    if result.refuted:
                        break
                outcomes.extend(r for _, r in out)
            return out
        results = self.refute_edges(path)
        return [(edge, results[edge_key(edge)]) for edge in path]

    # ------------------------------------------------------------------
    # Fact refutation (the casts / immutability clients)
    # ------------------------------------------------------------------

    def refute_facts(self, requests: Sequence[FactJob]) -> list[EdgeResult]:
        """Run a batch of :meth:`Engine.refute_fact_at` queries.

        ``requests`` is a sequence of ``(label, bindings, description)``
        triples; results come back in request order regardless of the
        completion order on the pool.
        """
        total = len(requests)
        results: list[Optional[EdgeResult]] = [None] * total
        with self._timed_batch(total, self.jobs, self.backend, "facts") as outcomes:
            if self.jobs == 1 or total <= 1:
                for i, (label, bindings, description) in enumerate(requests):
                    with self._job_span("fact", description):
                        result = self.engine.refute_fact_at(
                            label, bindings, description=description
                        )
                    _JOBS_DONE.inc()
                    _JOB_SECONDS.observe(result.seconds)
                    results[i] = result
                    self._record_fact(description, result, SERIAL)
                    self._emit_finished(description, result, SERIAL, i, total)
            else:
                from concurrent.futures import as_completed

                pool = self._get_pool()
                futures = {}
                for i, (label, bindings, description) in enumerate(requests):
                    self.events.emit(
                        EdgeScheduled(description=description, index=i, total=total)
                    )
                    if self.backend == PROCESS:
                        fut = pool.submit(
                            _process_refute_fact, label, bindings, description
                        )
                    else:
                        fut = pool.submit(
                            self._thread_refute_fact, label, bindings, description
                        )
                    futures[fut] = i
                done = 0
                for fut in as_completed(futures):
                    i = futures[fut]
                    result, worker = self._unpack(fut.result())
                    results[i] = result
                    description = requests[i][2]
                    self._record_fact(description, result, worker)
                    self._emit_finished(description, result, worker, done, total)
                    done += 1
            final = [r for r in results if r is not None]
            outcomes.extend(final)
        return final

    def _thread_refute_fact(
        self, label, bindings, description: str = "<fact>"
    ) -> tuple[EdgeResult, str]:
        engine, worker = self._worker_engine()
        with self._job_span("fact", description):
            result = engine.refute_fact_at(label, bindings, description=description)
        _JOBS_DONE.inc()
        _JOB_SECONDS.observe(result.seconds)
        return result, worker

    # ------------------------------------------------------------------
    # Results, records, reports
    # ------------------------------------------------------------------

    def _unpack(self, payload: tuple) -> tuple[EdgeResult, str]:
        """Unpack a worker's return value. Process workers append their
        process-cumulative cache-counter snapshot (latest snapshot per
        worker wins — counters are cumulative, so summing per-job values
        would double-count; merged into the run report) plus an ``obs``
        dict: a cumulative metrics snapshot (latest wins, merged at
        :meth:`close`), drained span records (incremental, absorbed into
        the parent tracer now), and drained search journals (incremental,
        absorbed into the parent run journal now)."""
        if len(payload) == 4:
            result, worker, snapshot, obs = payload
            with self._lock:
                self._worker_snapshots[worker] = snapshot
                if "metrics" in obs:
                    self._worker_metrics[worker] = obs["metrics"]
            spans = obs.get("spans")
            if spans and self._tracer is not None:
                self._tracer.absorb(spans, obs["pid"], obs["wall_epoch"])
            journals = obs.get("journals")
            if journals:
                book = provenance.get_journal()
                if book is not None:
                    book.absorb(journals)
            return result, worker
        result, worker = payload
        return result, worker

    def _cached(self, key: EdgeKey) -> Optional[EdgeResult]:
        with self._lock:
            return self.engine._edge_cache.get(key)

    def _store(
        self, key: EdgeKey, edge: HeapEdge, result: EdgeResult, worker: str
    ) -> None:
        with self._lock:
            # Merge into the serial engine's cache so every consumer —
            # including direct Engine users like witness rendering — sees
            # one coherent result set.
            if key not in self.engine._edge_cache:
                self.engine._edge_cache[key] = result
            if key not in self._records:
                self._records[key] = EdgeRecord.from_result(
                    result, worker=worker, description=str(edge), kind="edge"
                )

    def _record_fact(
        self, description: str, result: EdgeResult, worker: str
    ) -> None:
        with self._lock:
            key = ("fact", description, len(self._records))
            self._records[key] = EdgeRecord.from_result(
                result, worker=worker, description=description, kind="fact"
            )

    def _emit_finished(
        self,
        description: str,
        result: EdgeResult,
        worker: str,
        index: int,
        total: int,
        cached: bool = False,
    ) -> None:
        self.events.emit(
            EdgeFinished(
                description=description,
                status=result.status,
                seconds=result.seconds,
                path_programs=result.path_programs,
                worker=worker,
                index=index,
                total=total,
                cached=cached,
            )
        )

    def edge_results(self) -> dict:
        """All per-edge outcomes so far, keyed by edge key."""
        with self._lock:
            return dict(self.engine._edge_cache)

    def seed_results(self, results: dict) -> None:
        """Pre-populate the shared result cache with verdicts carried over
        from an earlier run (the serve session's surviving verdict table).
        Seeded edges are answered as cache hits without re-searching;
        existing entries are never overwritten."""
        with self._lock:
            for key, result in results.items():
                self.engine._edge_cache.setdefault(key, result)

    def mark(self) -> tuple[int, int]:
        """A per-request bookmark: ``(records so far, cache hits so far)``.
        Pass the first element to :meth:`build_report` as ``since`` to
        report just the jobs run after the mark; diff the second against
        :attr:`cache_hits` for the verdicts served from cache since."""
        with self._lock:
            return len(self._records), self.cache_hits

    def build_report(
        self, app: str = "", command: str = "", since: int = 0
    ) -> RunReport:
        """Snapshot the run so far as a structured :class:`RunReport`.

        The ``cache`` section merges this process's cache counters with the
        latest snapshot from each process-pool worker, and adds the shared
        refuted-state store's size/hit statistics."""
        with self._lock:
            snapshots = list(self._worker_snapshots.values())
        cache = perf.cache_report(snapshots)
        cache["refuted_store"] = (
            self.refuted_states.stats() if self.refuted_states is not None else None
        )
        cache["memoize_solver"] = self.config.memoize_solver
        cache["state_subsumption"] = self.config.state_subsumption
        with self._lock:
            return RunReport(
                app=app,
                command=command,
                jobs=self.jobs,
                backend=self.backend,
                deadline=self.config.deadline_seconds,
                path_budget=self.config.path_budget,
                wall_seconds=self._wall_seconds,
                records=list(self._records.values())[since:],
                phase_seconds=dict(self._phase_seconds),
                cache=cache,
            )


# ---------------------------------------------------------------------------
# Process-backend workers (module-level so they pickle by reference)
# ---------------------------------------------------------------------------

_PROCESS_ENGINE: Optional[Engine] = None


def _process_init(payload: bytes) -> None:
    global _PROCESS_ENGINE
    pta, config, trace_on, journal_on = pickle.loads(payload)
    _PROCESS_ENGINE = Engine(pta, config)
    # Mirror the parent's observability setup so worker spans and search
    # journals exist to be drained back after each job.
    if trace_on:
        trace.install()
    if journal_on:
        provenance.install()


def _worker_obs_payload() -> dict:
    """Everything a process worker ships back besides the job result:
    a cumulative metrics snapshot, plus incremental drains of the span
    buffer and the search journals when those subsystems are on."""
    obs: dict = {
        "metrics": metrics.REGISTRY.snapshot(),
        "pid": os.getpid(),
    }
    tracer = trace.get_tracer()
    if tracer is not None:
        obs["spans"] = [r.to_dict() for r in tracer.drain()]
        obs["wall_epoch"] = tracer.wall_epoch
    book = provenance.get_journal()
    if book is not None:
        obs["journals"] = book.drain()
    return obs


def _process_refute_edge(edge: HeapEdge) -> tuple[EdgeResult, str, dict, dict]:
    assert _PROCESS_ENGINE is not None
    result = _PROCESS_ENGINE.refute_edge(edge)
    worker = f"process-{os.getpid()}"
    return result, worker, perf.cache_stats_snapshot(), _worker_obs_payload()


def _process_refute_fact(
    label, bindings, description: str = "<fact>"
) -> tuple[EdgeResult, str, dict, dict]:
    assert _PROCESS_ENGINE is not None
    result = _PROCESS_ENGINE.refute_fact_at(
        label, bindings, description=description
    )
    worker = f"process-{os.getpid()}"
    return result, worker, perf.cache_stats_snapshot(), _worker_obs_payload()
