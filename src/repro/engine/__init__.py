"""The parallel refutation driver: schedules independent edge-refutation
jobs over a worker pool, enforces per-edge wall-clock deadlines, and emits
structured run reports plus a live progress event stream.

This is the seam between the single-edge search engine
(:mod:`repro.symbolic`) and every client that refutes *many* edges
(:mod:`repro.android.leaks`, :mod:`repro.clients`, :mod:`repro.reporting`).
"""

from .diff import diff_reports, render_diff
from .driver import PROCESS, SERIAL, THREAD, RefutationDriver
from .events import (
    EdgeEscalated,
    EdgeFinished,
    EdgeScheduled,
    EdgeStolen,
    EventBus,
    ProgressPrinter,
    RunFinished,
    RunStarted,
    SpanFinished,
)
from .report import EdgeRecord, RunReport

__all__ = [
    "RefutationDriver",
    "SERIAL",
    "THREAD",
    "PROCESS",
    "EdgeEscalated",
    "EdgeFinished",
    "EdgeScheduled",
    "EdgeStolen",
    "EventBus",
    "ProgressPrinter",
    "RunFinished",
    "RunStarted",
    "SpanFinished",
    "EdgeRecord",
    "RunReport",
    "diff_reports",
    "render_diff",
]
