"""Run-report diffing: per-edge blame for wall/solver/verdict regressions.

``benchmarks/compare_bench.py`` can tell you *that* a run regressed;
this module tells you *where*. Two :class:`~repro.engine.report.RunReport`
artifacts are joined on the stable job token ``(kind, description)`` —
the same token the driver sorts records by, so the join is insensitive
to ``--jobs``, backend, and schedule permutations — and every delta is
attributed:

* per-record: wall seconds, path programs, verdict flips, rung moves;
* run-level: total wall, the solver answer-tier mix (per-edge solver
  calls are not recorded, so solver-call deltas are attributed at the
  tier level), kill-reason attribution, and scheduler efficacy
  (steals, priority inversions).

Used by ``repro explain --diff A.json B.json``.
"""

from __future__ import annotations

from .report import RunReport


def _tiers(report: RunReport) -> dict:
    tiers = (report.cache or {}).get("tiers") or {}
    return {k: v for k, v in tiers.items() if isinstance(v, (int, float))}


def _store(report: RunReport) -> dict:
    store = (report.cache or {}).get("store") or {}
    return {
        k: v
        for k, v in store.items()
        if k in ("hits", "misses", "writes", "evictions", "errors")
        and isinstance(v, (int, float))
    }


def _counts(a: dict, b: dict) -> dict:
    """Keywise ``{key: {a, b, delta}}`` over the union of two count maps."""
    out = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0), b.get(key, 0)
        out[key] = {"a": va, "b": vb, "delta": vb - va}
    return out


def diff_reports(a: RunReport, b: RunReport) -> dict:
    """Attribute the differences between two run reports (``b - a``)."""
    a_records = {(r.kind, r.description): r for r in a.records}
    b_records = {(r.kind, r.description): r for r in b.records}
    shared = sorted(set(a_records) & set(b_records))
    records = []
    for token in shared:
        ra, rb = a_records[token], b_records[token]
        records.append(
            {
                "kind": token[0],
                "description": token[1],
                "status_a": ra.status,
                "status_b": rb.status,
                "verdict_changed": ra.status != rb.status,
                "seconds_a": ra.seconds,
                "seconds_b": rb.seconds,
                "seconds_delta": rb.seconds - ra.seconds,
                "path_programs_a": ra.path_programs,
                "path_programs_b": rb.path_programs,
                "path_programs_delta": rb.path_programs - ra.path_programs,
                "rung_a": ra.rung,
                "rung_b": rb.rung,
            }
        )
    sched_a, sched_b = a.schedule or {}, b.schedule or {}
    return {
        "a": {"app": a.app, "command": a.command, "jobs": a.jobs,
              "wall_seconds": a.wall_seconds},
        "b": {"app": b.app, "command": b.command, "jobs": b.jobs,
              "wall_seconds": b.wall_seconds},
        "wall_delta": b.wall_seconds - a.wall_seconds,
        "records": records,
        "verdict_changes": [r for r in records if r["verdict_changed"]],
        "only_in_a": [list(t) for t in sorted(set(a_records) - set(b_records))],
        "only_in_b": [list(t) for t in sorted(set(b_records) - set(a_records))],
        "tiers": _counts(_tiers(a), _tiers(b)),
        "store": _counts(_store(a), _store(b)),
        "attribution": _counts(
            a.attribution.get("kills", {}), b.attribution.get("kills", {})
        ),
        "schedule": _counts(
            {
                "steals": sched_a.get("steals", 0) or 0,
                "priority_inversions": sched_a.get("priority_inversions", 0)
                or 0,
            },
            {
                "steals": sched_b.get("steals", 0) or 0,
                "priority_inversions": sched_b.get("priority_inversions", 0)
                or 0,
            },
        ),
    }


def render_diff(diff: dict, top: int = 10) -> str:
    """Human rendering of :func:`diff_reports`: run totals, verdict flips,
    then the ``top`` records by absolute wall delta."""
    lines = []
    a, b = diff["a"], diff["b"]
    lines.append(
        f"run diff: A={a['app'] or a['command'] or 'report'}"
        f" ({a['wall_seconds']:.2f}s)"
        f"  B={b['app'] or b['command'] or 'report'}"
        f" ({b['wall_seconds']:.2f}s)"
        f"  wall delta {diff['wall_delta']:+.2f}s"
    )
    if diff["verdict_changes"]:
        lines.append("verdict changes:")
        for r in diff["verdict_changes"]:
            lines.append(
                f"  {r['kind']:4s} {r['description']}: "
                f"{r['status_a']} -> {r['status_b']}"
            )
    for side, key in (("A", "only_in_a"), ("B", "only_in_b")):
        if diff[key]:
            tokens = ", ".join(t[1] for t in diff[key][:5])
            more = len(diff[key]) - 5
            suffix = f" (+{more} more)" if more > 0 else ""
            lines.append(f"only in {side}: {tokens}{suffix}")
    movers = sorted(
        diff["records"], key=lambda r: -abs(r["seconds_delta"])
    )[:top]
    if movers:
        lines.append(f"top {len(movers)} records by |wall delta| (B - A):")
        for r in movers:
            rung = (
                f"  rung {r['rung_a']}->{r['rung_b']}"
                if r["rung_a"] != r["rung_b"]
                else ""
            )
            lines.append(
                f"  {r['seconds_delta']:+8.3f}s"
                f"  {r['path_programs_delta']:+6d} pp"
                f"  {r['kind']:4s} {r['description']}"
                f" [{r['status_b']}]{rung}"
            )
    tier_moves = {
        name: d for name, d in diff["tiers"].items() if d["delta"] != 0
    }
    if tier_moves:
        lines.append("solver answer tiers (B - A):")
        for name, d in tier_moves.items():
            lines.append(
                f"  {name:20s} {d['a']:>10} -> {d['b']:>10}"
                f"  ({d['delta']:+})"
            )
    store_moves = {
        name: d for name, d in diff["store"].items() if d["delta"] != 0
    }
    if store_moves:
        lines.append("persistent store (B - A):")
        for name, d in store_moves.items():
            lines.append(
                f"  {name:20s} {d['a']:>10} -> {d['b']:>10}"
                f"  ({d['delta']:+})"
            )
    kill_moves = {
        name: d for name, d in diff["attribution"].items() if d["delta"] != 0
    }
    if kill_moves:
        lines.append("kill attribution (B - A):")
        for name, d in kill_moves.items():
            lines.append(
                f"  {name:20s} {d['a']:>10} -> {d['b']:>10}"
                f"  ({d['delta']:+})"
            )
    sched_moves = {
        name: d for name, d in diff["schedule"].items() if d["delta"] != 0
    }
    if sched_moves:
        lines.append("scheduler (B - A):")
        for name, d in sched_moves.items():
            lines.append(
                f"  {name:20s} {d['a']:>10} -> {d['b']:>10}"
                f"  ({d['delta']:+})"
            )
    return "\n".join(lines)


__all__ = ["diff_reports", "render_diff"]
