"""Live progress events emitted by the refutation driver.

Every scheduling decision and every finished edge job produces one event.
Consumers subscribe a plain callable (``on_event``) — the CLI attaches a
:class:`ProgressPrinter` for live terminal output, the reporting layer can
attach collectors, and tests attach plain lists. Events are immutable
dataclasses so they can be fanned out to several sinks safely.

Emission is serialized under a lock: worker threads finish edges
concurrently, but sinks observe a single, totally-ordered stream.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO

Event = object
EventSink = Callable[[Event], None]


@dataclass(frozen=True)
class RunStarted:
    """A batch of edge-refutation jobs is about to be scheduled."""

    total_jobs: int
    jobs: int  # worker count
    backend: str  # "serial" | "thread" | "process"
    deadline: Optional[float] = None  # per-edge wall-clock seconds


@dataclass(frozen=True)
class EdgeScheduled:
    """One edge job was handed to the worker pool."""

    description: str  # human-readable edge / fact description
    index: int  # 0-based position within the batch
    total: int


@dataclass(frozen=True)
class EdgeEscalated:
    """One portfolio job timed out at a rung and carries over to the next
    (see :func:`repro.engine.schedule.rung_ladder`). Emitted only for
    non-final rungs — a final-rung timeout is an :class:`EdgeFinished`."""

    description: str
    rung: int  # the rung that timed out (0-based)
    next_budget: Optional[int] = None  # None = the full configured budget
    next_deadline: Optional[float] = None


@dataclass(frozen=True)
class EdgeStolen:
    """An idle worker stole a path-state subtree from an in-flight
    search's shared worklist (``config.work_stealing``). One event per
    steal, attributed to the stealing thread."""

    description: str  # the assisted search
    thread: str  # the stealing worker thread's name
    queued: int = 0  # states left on the shared worklist after the steal


@dataclass(frozen=True)
class EdgeFinished:
    """One edge job completed (in completion order, not schedule order)."""

    description: str
    status: str  # refuted | witnessed | timeout
    seconds: float
    path_programs: int
    worker: str  # e.g. "serial", "thread-0", "process-3"
    index: int
    total: int
    cached: bool = False  # served from the driver's result cache


@dataclass(frozen=True)
class RunFinished:
    """The batch completed; aggregate counts for quick consumption."""

    refuted: int
    witnessed: int
    timeouts: int
    seconds: float


@dataclass(frozen=True)
class SpanFinished:
    """One tracing span closed somewhere inside the pipeline.

    Emitted only when a tracer is installed (``--trace``): the driver
    forwards every finished span from :mod:`repro.obs.trace` onto its bus,
    which is how the progress printer and the JSON run report acquire
    per-phase timing without bespoke plumbing in each layer.
    """

    name: str  # span name, e.g. "executor.search"
    seconds: float
    thread: str  # name of the thread that ran the span
    attrs: dict


class EventBus:
    """Thread-safe fan-out of driver events to any number of sinks."""

    def __init__(self, sinks: Optional[List[EventSink]] = None) -> None:
        self._sinks: List[EventSink] = list(sinks or [])
        self._lock = threading.Lock()

    def subscribe(self, sink: EventSink) -> None:
        with self._lock:
            self._sinks.append(sink)

    def emit(self, event: Event) -> None:
        with self._lock:
            for sink in self._sinks:
                sink(event)


class ProgressPrinter:
    """An :class:`EventSink` rendering one line per finished edge::

        [  3/ 17] refuted    Vec.table -> activity0  (0.04s, 12 pp, thread-1)

    Attach with ``RefutationDriver(..., on_event=ProgressPrinter())``.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream or sys.stderr
        #: Per-phase totals accumulated from SpanFinished events (only
        #: populated when tracing is on); printed after RunFinished.
        self.phase_seconds: dict[str, float] = {}

    def __call__(self, event: Event) -> None:
        if isinstance(event, SpanFinished):
            self.phase_seconds[event.name] = (
                self.phase_seconds.get(event.name, 0.0) + event.seconds
            )
        elif isinstance(event, RunStarted):
            deadline = (
                f", deadline {event.deadline}s/edge" if event.deadline else ""
            )
            print(
                f"refuting {event.total_jobs} edge(s) on {event.jobs}"
                f" {event.backend} worker(s){deadline}",
                file=self.stream,
            )
        elif isinstance(event, EdgeFinished):
            cached = " [cached]" if event.cached else ""
            print(
                f"[{event.index + 1:3d}/{event.total:3d}]"
                f" {event.status:9s} {event.description}"
                f"  ({event.seconds:.2f}s, {event.path_programs} pp,"
                f" {event.worker}){cached}",
                file=self.stream,
            )
        elif isinstance(event, RunFinished):
            print(
                f"done: {event.refuted} refuted, {event.witnessed} witnessed,"
                f" {event.timeouts} timeout(s) in {event.seconds:.2f}s",
                file=self.stream,
            )
            if self.phase_seconds:
                top = sorted(
                    self.phase_seconds.items(), key=lambda kv: -kv[1]
                )[:6]
                breakdown = ", ".join(f"{n} {s:.2f}s" for n, s in top)
                print(f"phases: {breakdown}", file=self.stream)
