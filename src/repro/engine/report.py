"""Structured run reports: the JSON artifact of one refutation run.

A :class:`RunReport` records, for every edge (or fact) job the driver
executed, its verdict, effort, wall-clock time, refutation kinds, and the
worker that ran it, plus run-level metadata (worker count, backend,
deadline, total wall time). It round-trips through JSON
(``to_json``/``from_json``) so runs can be archived, diffed, and consumed
by dashboards — the machine-readable counterpart of the human tables in
:mod:`repro.reporting`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..symbolic.stats import REFUTED, TIMEOUT, WITNESSED, EdgeResult

SCHEMA_VERSION = 1


@dataclass
class EdgeRecord:
    """One refutation job's outcome, JSON-ready."""

    description: str  # e.g. "Vec.table -> activity0" or "cast@L12"
    status: str  # refuted | witnessed | timeout
    path_programs: int = 0
    seconds: float = 0.0
    refutation_kinds: dict = field(default_factory=dict)
    worker: str = "serial"
    kind: str = "edge"  # edge | fact
    witness_trace: Optional[list] = None
    #: Typed kill-reason counts from the search journal (empty unless a
    #: provenance journal was installed for the run).
    kill_reasons: dict = field(default_factory=dict)
    #: Portfolio rung that resolved this job (0 = first/only rung; always
    #: 0 outside ``--portfolio`` runs).
    rung: int = 0

    @classmethod
    def from_result(
        cls,
        result: EdgeResult,
        worker: str = "serial",
        description: Optional[str] = None,
        kind: str = "edge",
    ) -> "EdgeRecord":
        return cls(
            description=description
            if description is not None
            else (str(result.edge) if result.edge is not None else "<fact>"),
            status=result.status,
            path_programs=result.path_programs,
            seconds=result.seconds,
            refutation_kinds=dict(result.refutation_kinds),
            worker=worker,
            kind=kind,
            witness_trace=list(result.witness_trace)
            if result.witness_trace is not None
            else None,
            kill_reasons=dict(result.kill_reasons),
            rung=result.rung,
        )


@dataclass
class RunReport:
    """Everything one driver run produced, serializable to JSON."""

    app: str = ""
    command: str = ""  # which client produced the run (check, casts, ...)
    jobs: int = 1
    backend: str = "serial"
    deadline: Optional[float] = None
    path_budget: int = 0
    wall_seconds: float = 0.0
    records: list[EdgeRecord] = field(default_factory=list)
    #: Summed seconds per pipeline phase (span name -> total), populated
    #: from the span stream when tracing is enabled; empty otherwise.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Cache behavior for the run: per-cache hit/miss counts and rates
    #: (solver memo, entailment memo, refuted-state cache, term interning)
    #: merged across process-pool workers, plus the active toggle values.
    #: See :func:`repro.perf.cache_report`.
    cache: dict = field(default_factory=dict)
    #: Scheduling behavior for the run: the active policy (``lifo`` /
    #: ``priority``), portfolio/work-stealing toggles, per-rung resolution
    #: stats (``rungs``: scheduled/resolved/carryover and verdict counts
    #: per rung), ``resolved_at_rung`` rollup, ``steals``, and
    #: ``priority_inversions``. See :mod:`repro.engine.schedule`.
    schedule: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- aggregates -----------------------------------------------------------

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def edges_refuted(self) -> int:
        return self._count(REFUTED)

    @property
    def edges_witnessed(self) -> int:
        return self._count(WITNESSED)

    @property
    def edge_timeouts(self) -> int:
        return self._count(TIMEOUT)

    @property
    def path_programs(self) -> int:
        return sum(r.path_programs for r in self.records)

    @property
    def busy_seconds(self) -> float:
        """Summed per-edge time (> wall_seconds when workers overlap)."""
        return sum(r.seconds for r in self.records)

    def statuses(self) -> dict[str, str]:
        """Verdict per job description — the determinism-check payload."""
        return {r.description: r.status for r in self.records}

    @property
    def attribution(self) -> dict:
        """Run-wide prune attribution: which mechanism killed how many
        branches (the paper's "which mechanism refuted what" accounting).
        Totals equal the sum of per-edge journal kill events."""
        kills: dict[str, int] = {}
        for r in self.records:
            for reason, n in r.kill_reasons.items():
                kills[reason] = kills.get(reason, 0) + n
        return {
            "kills": dict(sorted(kills.items())),
            "total_kills": sum(kills.values()),
        }

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        out["summary"] = {
            "refuted": self.edges_refuted,
            "witnessed": self.edges_witnessed,
            "timeouts": self.edge_timeouts,
            "path_programs": self.path_programs,
            "busy_seconds": self.busy_seconds,
        }
        out["attribution"] = self.attribution
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        records = [EdgeRecord(**r) for r in data.get("records", [])]
        return cls(
            app=data.get("app", ""),
            command=data.get("command", ""),
            jobs=data.get("jobs", 1),
            backend=data.get("backend", "serial"),
            deadline=data.get("deadline"),
            path_budget=data.get("path_budget", 0),
            wall_seconds=data.get("wall_seconds", 0.0),
            records=records,
            phase_seconds=data.get("phase_seconds", {}),
            cache=data.get("cache", {}),
            schedule=data.get("schedule", {}),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
